"""Telemetry subsystem: metrics registry, sinks, spans, engine wiring."""

import io
import json

import numpy as np
import pytest

from repro import (
    ConventionalEngine,
    IoTDBStyleEngine,
    LogNormalDelay,
    LsmConfig,
    MultiLevelEngine,
    SeparationEngine,
    TieredEngine,
    TimeSeriesDatabase,
    ConfigError,
    TelemetryError,
    execute_range_query,
    load_trace,
    render_trace_report,
)
from repro.lsm import AdaptiveEngine
from repro.obs import (
    ConsoleSink,
    JsonlFileSink,
    MetricsRegistry,
    NULL_TELEMETRY,
    RingBufferSink,
    Telemetry,
    build_telemetry,
    make_sink,
    parse_sink_spec,
    summarize_trace,
)
from repro.workloads import generate_synthetic


@pytest.fixture(scope="module")
def disordered():
    return generate_synthetic(
        30_000, dt=50, delay=LogNormalDelay(5.0, 2.0), seed=11
    )


class TestMetricsRegistry:
    def test_counter_get_or_create_and_inc(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        assert registry.counter("a").value == 5

    def test_counter_rejects_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError):
            registry.counter("a").inc(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(3)
        registry.gauge("g").set(1.5)
        assert registry.gauge("g").value == 1.5

    def test_histogram_buckets_and_stats(self):
        registry = MetricsRegistry()
        h = registry.histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.bucket_counts == [1, 1, 2]  # <=1, <=10, +inf
        assert h.mean == pytest.approx(138.875)
        assert h.max == 500.0

    def test_histogram_rejects_bad_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError):
            registry.histogram("bad", buckets=(5.0, 5.0))
        with pytest.raises(TelemetryError):
            registry.histogram("empty", buckets=())

    def test_name_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TelemetryError):
            registry.gauge("x")

    def test_as_dict_and_render(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(3.0)
        snapshot = registry.as_dict()
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"] == {"g": 1.0}
        assert snapshot["histograms"]["h"]["count"] == 1
        text = registry.render()
        assert "c" in text and "g" in text and "h" in text


class TestSinks:
    def test_parse_sink_spec(self):
        assert parse_sink_spec("memory") == ("memory", "")
        assert parse_sink_spec("memory:128") == ("memory", "128")
        assert parse_sink_spec("console") == ("console", "")
        assert parse_sink_spec("jsonl:/tmp/x.jsonl") == ("jsonl", "/tmp/x.jsonl")

    @pytest.mark.parametrize(
        "spec", ["", "bogus", "jsonl", "jsonl:", "memory:zero", "memory:0",
                 "console:arg"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigError):
            parse_sink_spec(spec)

    def test_ring_buffer_caps_and_counts_drops(self):
        sink = RingBufferSink(capacity=3)
        for i in range(5):
            sink.write({"seq": i})
        assert [e["seq"] for e in sink.events] == [2, 3, 4]
        assert sink.dropped == 2
        sink.clear()
        assert len(sink) == 0 and sink.dropped == 0

    def test_jsonl_sink_appends_and_lazy_opens(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlFileSink(str(path))
        assert not path.exists()  # lazy: no event, no file
        sink.write({"type": "x", "n": np.int64(3)})
        sink.write({"type": "y"})
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == {"type": "x", "n": 3}

    def test_console_sink_writes_json_lines(self):
        stream = io.StringIO()
        sink = ConsoleSink(stream=stream)
        sink.write({"type": "z"})
        assert json.loads(stream.getvalue()) == {"type": "z"}

    def test_make_sink_dispatch(self):
        assert isinstance(make_sink("memory:7"), RingBufferSink)
        assert make_sink("memory:7").capacity == 7
        assert isinstance(make_sink("console"), ConsoleSink)
        assert isinstance(make_sink("jsonl:x.jsonl"), JsonlFileSink)


class TestTelemetryBus:
    def test_emit_stamps_seq_and_ts(self):
        sink = RingBufferSink()
        telemetry = Telemetry(sinks=[sink])
        telemetry.emit({"type": "a"})
        telemetry.emit({"type": "b"})
        events = sink.events
        assert [e["seq"] for e in events] == [0, 1]
        assert all(e["ts_ms"] >= 0 for e in events)

    def test_span_duration_and_fields(self):
        sink = RingBufferSink()
        telemetry = Telemetry(sinks=[sink])
        with telemetry.span("phase", engine="pi_c") as span:
            span.set(points=10)
        (event,) = sink.events
        assert event["type"] == "span"
        assert event["name"] == "phase"
        assert event["engine"] == "pi_c"
        assert event["points"] == 10
        assert event["duration_ms"] >= 0
        assert telemetry.registry.histogram("span.phase.ms").count == 1

    def test_span_nesting_depth(self):
        sink = RingBufferSink()
        telemetry = Telemetry(sinks=[sink])
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        inner, outer = sink.events
        assert inner["name"] == "inner" and inner["depth"] == 1
        assert outer["name"] == "outer" and outer["depth"] == 0

    def test_span_records_error(self):
        sink = RingBufferSink()
        telemetry = Telemetry(sinks=[sink])
        with pytest.raises(ValueError):
            with telemetry.span("boom"):
                raise ValueError("x")
        (event,) = sink.events
        assert event["error"] == "ValueError"

    def test_disabled_bus_is_noop(self):
        assert not NULL_TELEMETRY.enabled
        NULL_TELEMETRY.emit({"type": "ignored"})
        NULL_TELEMETRY.count("nope")
        with NULL_TELEMETRY.span("nothing") as span:
            span.set(a=1)
            span.rename("still-nothing")
        assert NULL_TELEMETRY.ring_events() == []

    def test_build_telemetry_from_config(self):
        assert build_telemetry(LsmConfig()) is NULL_TELEMETRY
        telemetry = build_telemetry(LsmConfig().with_telemetry("memory:16"))
        assert telemetry.enabled
        assert isinstance(telemetry.sinks[0], RingBufferSink)

    def test_config_validates_sink_spec(self):
        with pytest.raises(ConfigError):
            LsmConfig(telemetry_sink="bogus")


class TestEngineIntegration:
    """The acceptance path: engine + query -> JSONL trace -> report."""

    @pytest.fixture()
    def traced_separation(self, tmp_path, disordered):
        path = tmp_path / "trace.jsonl"
        config = LsmConfig(256, 256, seq_capacity=128).with_telemetry(
            f"jsonl:{path}"
        )
        engine = SeparationEngine(config)
        engine.ingest(disordered.tg)
        engine.flush_all()
        execute_range_query(
            engine.snapshot(), 1_000.0, 400_000.0, telemetry=engine.telemetry
        )
        engine.telemetry.close()
        return engine, path

    def test_trace_contains_flush_merge_query_with_durations(
        self, traced_separation
    ):
        _, path = traced_separation
        events = load_trace(path)
        spans = {e["name"] for e in events if e["type"] == "span"}
        assert {"ingest", "flush", "merge"} <= spans
        for event in events:
            if event["type"] == "span":
                assert event["duration_ms"] >= 0
        merges = [
            e for e in events if e["type"] == "span" and e["name"] == "merge"
        ]
        assert all("rewritten_points" in e for e in merges)
        queries = [e for e in events if e["type"] == "query"]
        assert len(queries) == 1
        assert queries[0]["duration_ms"] >= 0
        assert queries[0]["result_points"] > 0
        assert queries[0]["files_touched"] > 0

    def test_merge_rewrites_agree_with_exact_wa_accounting(
        self, traced_separation
    ):
        """Telemetry must agree with WriteStats: rewrites = disk - first."""
        engine, path = traced_separation
        events = load_trace(path)
        merge_rewrites = sum(
            e["rewritten_points"]
            for e in events
            if e["type"] == "compaction" and e["kind"] == "merge"
        )
        first_writes = engine.stats.user_points  # every point written once
        assert merge_rewrites == engine.stats.disk_writes - first_writes

    def test_compaction_events_mirror_write_stats_log(self, traced_separation):
        engine, path = traced_separation
        events = [e for e in load_trace(path) if e["type"] == "compaction"]
        assert len(events) == len(engine.stats.events)
        for traced, recorded in zip(events, engine.stats.events):
            assert traced["kind"] == recorded.kind
            assert traced["arrival_index"] == recorded.arrival_index
            assert traced["new_points"] == recorded.new_points
            assert traced["rewritten_points"] == recorded.rewritten_points

    def test_report_renders_summary(self, traced_separation):
        _, path = traced_separation
        events = load_trace(path)
        report = render_trace_report(events, source=str(path))
        assert "flush" in report and "merge" in report
        assert "queries" in report
        summary = summarize_trace(events)
        assert summary.query_count == 1
        assert summary.merge_rewritten_points > 0

    def test_metrics_counters_track_ingest_and_queries(self, disordered):
        config = LsmConfig(256, 256).with_telemetry("memory")
        engine = ConventionalEngine(config)
        engine.ingest(disordered.tg)
        engine.flush_all()
        execute_range_query(
            engine.snapshot(), 0.0, 1e9, telemetry=engine.telemetry
        )
        counters = engine.telemetry.registry.as_dict()["counters"]
        assert counters["ingest.points"] == len(disordered)
        assert counters["engine.disk_points_written"] == engine.stats.disk_writes
        assert counters["query.count"] == 1
        assert counters["query.disk_points_read"] >= counters["query.result_points"]

    @pytest.mark.parametrize(
        "factory",
        [
            lambda t: ConventionalEngine(LsmConfig(128, 128), telemetry=t),
            lambda t: SeparationEngine(
                LsmConfig(128, 128, seq_capacity=64), telemetry=t
            ),
            lambda t: IoTDBStyleEngine(
                LsmConfig(128, 128), policy="separation", telemetry=t
            ),
            lambda t: MultiLevelEngine(
                LsmConfig(128, 128), size_ratio=2, max_levels=4, telemetry=t
            ),
            lambda t: TieredEngine(
                LsmConfig(128, 128), tier_fanout=2, max_levels=6, telemetry=t
            ),
        ],
        ids=["conventional", "separation", "iotdb", "multilevel", "tiered"],
    )
    def test_every_engine_emits_spans_and_compactions(self, factory, disordered):
        sink = RingBufferSink(capacity=100_000)
        engine = factory(Telemetry(sinks=[sink]))
        engine.ingest(disordered.tg[:8_000])
        engine.flush_all()
        types = {e["type"] for e in sink.events}
        assert "span" in types and "compaction" in types
        span_names = {e["name"] for e in sink.events if e["type"] == "span"}
        assert "flush" in span_names or "merge" in span_names

    def test_telemetry_does_not_change_wa(self, disordered):
        quiet = SeparationEngine(LsmConfig(256, 256, seq_capacity=128))
        loud = SeparationEngine(
            LsmConfig(256, 256, seq_capacity=128).with_telemetry("memory:64")
        )
        for engine in (quiet, loud):
            engine.ingest(disordered.tg)
            engine.flush_all()
        assert loud.stats.disk_writes == quiet.stats.disk_writes
        assert loud.stats.user_points == quiet.stats.user_points
        assert loud.write_amplification == quiet.write_amplification


class TestAdaptiveAndDatabase:
    def test_adaptive_engine_publishes_decisions(self):
        sink = RingBufferSink(capacity=100_000)
        telemetry = Telemetry(sinks=[sink])
        dataset = generate_synthetic(
            40_000, dt=50, delay=LogNormalDelay(5.0, 2.0), seed=5
        )
        engine = AdaptiveEngine(
            LsmConfig(256, 256), check_interval=4096, telemetry=telemetry
        )
        engine.ingest(dataset.tg, dataset.ta)
        engine.flush_all()
        types = {e["type"] for e in sink.events}
        assert "compaction" in types
        decisions = [
            e for e in sink.events if e["type"] == "adaptive.decision"
        ]
        switches = [e for e in sink.events if e["type"] == "adaptive.switch"]
        assert len(decisions) == len(engine.decision_log)
        assert len(switches) == len(engine.switch_log)

    def test_database_counts_routed_writes(self):
        sink = RingBufferSink(capacity=100_000)
        telemetry = Telemetry(sinks=[sink])
        db = TimeSeriesDatabase(
            memory_budget_per_series=64, sstable_size=64, telemetry=telemetry
        )
        rng = np.random.default_rng(0)
        for name in ("s1", "s2"):
            db.write(name, np.sort(rng.uniform(0, 1e4, 500)))
        db.flush_all()
        counters = telemetry.registry.as_dict()["counters"]
        assert counters["db.series"] == 2
        assert counters["db.write.points"] == 1000
        assert counters["db.write.batches"] == 2
        created = [
            e for e in sink.events if e["type"] == "db.series_created"
        ]
        assert {e["series"] for e in created} == {"s1", "s2"}
