"""Tests for cross-shard query federation.

The load-bearing property is *exactness*: a federated range/aggregate
query over a sharded fleet must return the same bits — float ``sum``
included — as the same query over one unsharded
:class:`~repro.lsm.database.TimeSeriesDatabase` holding the same
points.  The matrix below pins it across three engine policy triples,
both router modes, row and columnar tiers, and three ingest stages.
On top of exactness: the single-series fast path (zero reads on other
shards), the epoch-keyed federation cache (per-shard invalidation),
the warm scatter pool, the multi-series SQL front-end, and the
fleet-aware experiment cache keys.
"""

import math
import multiprocessing

import numpy as np
import pytest

from repro.distributions import ExponentialDelay, UniformDelay
from repro.errors import EngineError, QueryError
from repro.lsm.database import TimeSeriesDatabase
from repro.obs.sharding import render_federation_report
from repro.obs.telemetry import Telemetry
from repro.parallel.cache import experiment_key, fleet_fingerprint
from repro.query.aggregation import AggregateResult, execute_aggregate_query
from repro.query.executor import execute_range_query
from repro.query.merge import (
    aggregate_over_series,
    canonical_series_order,
    merge_aggregates,
    merge_range_stats,
    scan_over_series,
)
from repro.query.sql import execute_sql, parse_query
from repro.serving import FederationCache, ShardRouter, ShardedDatabase, shard_name
from repro.workloads import generate_synthetic

_DB_KWARGS = dict(memory_budget_per_series=64, sstable_size=32)

_FORK = "fork" in multiprocessing.get_all_start_methods()


def _datasets(names, n_points=900, disordered=True, base_seed=23):
    delay = (
        ExponentialDelay(mean=40.0) if disordered else UniformDelay(0.0, 0.5)
    )
    return {
        name: generate_synthetic(
            n_points, dt=1.0, delay=delay, seed=base_seed + index, name=name
        )
        for index, name in enumerate(names)
    }


def _rounds(datasets, chunk=300, with_ta=False):
    n_points = len(next(iter(datasets.values())).tg)
    rounds = []
    for pos in range(0, n_points, chunk):
        region = slice(pos, pos + chunk)
        rounds.append(
            [
                (name, ds.tg[region], ds.ta[region])
                if with_ta
                else (name, ds.tg[region])
                for name, ds in datasets.items()
            ]
        )
    return rounds


def _build_pair(mode, router, names, datasets, telemetry=None):
    """A fleet and an unsharded reference fed identical sub-streams."""
    auto_tune = mode == "tuned"
    fleet = ShardedDatabase(
        router=router, auto_tune=auto_tune, telemetry=telemetry, **_DB_KWARGS
    )
    reference = TimeSeriesDatabase(auto_tune=auto_tune, **_DB_KWARGS)
    if mode == "pi_s":
        for name in names:
            fleet.database_for(name).create_series(name, seq_capacity=16)
            reference.create_series(name, seq_capacity=16)
    return fleet, reference


def _feed(fleet, reference, rounds, mode):
    """Yield (stage, ...) checkpoints while both sides ingest lock-step."""
    retune_at = len(rounds) // 2
    for rnd, batch in enumerate(rounds):
        fleet.ingest_batch(batch, sync=False)
        for entry in batch:
            reference.write(entry[0], entry[1], *entry[2:])
        if mode == "tuned" and rnd + 1 == retune_at:
            fleet.retune(min_observations=256)
            reference.retune(min_observations=256)
        if rnd + 1 == retune_at:
            yield "mid-ingest"
    yield "pre-flush"
    fleet.flush_all()
    reference.flush_all()
    yield "post-flush"


def _windows(datasets):
    tg_all = np.concatenate([ds.tg for ds in datasets.values()])
    lo, hi = float(tg_all.min()), float(tg_all.max())
    span = hi - lo
    return [
        (-math.inf, math.inf),
        (lo + 0.2 * span, lo + 0.7 * span),
        (lo + 0.55 * span, hi + 1.0),
    ]


def _assert_range_equal(fed, ref):
    assert fed.result_points == ref.result_points
    assert fed.disk_points_read == ref.disk_points_read
    assert fed.files_touched == ref.files_touched
    assert fed.memtable_points_scanned == ref.memtable_points_scanned
    assert fed.tables_pruned == ref.tables_pruned
    assert fed.tables_consulted == ref.tables_consulted
    assert fed.blocks_skipped == ref.blocks_skipped
    if ref.rows is None:
        assert fed.rows is None
    else:
        assert np.array_equal(fed.rows, ref.rows)
        assert np.array_equal(fed.row_ids, ref.row_ids)


class TestFederatedEquality:
    """Federated == unsharded, bitwise, across the whole matrix."""

    MODES = ("pi_c", "pi_s", "tuned")

    def _router(self, routing, n_shards=3):
        if routing == "hash":
            return ShardRouter(n_shards)
        return ShardRouter(
            n_shards, mode="range", boundaries=["series-02", "series-04"]
        )

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("routing", ("hash", "range"))
    @pytest.mark.parametrize("tier", ("row", "columnar"))
    def test_matches_unsharded_database(self, mode, routing, tier):
        names = [f"series-{i:02d}" for i in range(6)]
        datasets = _datasets(names)
        rounds = _rounds(datasets, with_ta=(mode == "tuned"))
        router = self._router(routing)
        fleet, reference = _build_pair(mode, router, names, datasets)
        windows = _windows(datasets)
        subset = [names[4], names[0], names[3]]  # explicit caller order
        stages = []
        for stage in _feed(fleet, reference, rounds, mode):
            stages.append(stage)
            if tier == "columnar" and stage == "post-flush":
                for db in [reference, *fleet.shards]:
                    for name in db.series_names():
                        db.series(name).engine.convert_cold()
            for lo, hi in windows:
                fed_agg = fleet.query_aggregate(lo=lo, hi=hi)
                ref_agg = aggregate_over_series(reference, lo=lo, hi=hi)
                assert fed_agg == ref_agg, (stage, lo, hi)
                assert isinstance(fed_agg, AggregateResult)
                fed_sub = fleet.query_aggregate(subset, lo=lo, hi=hi)
                ref_sub = aggregate_over_series(reference, subset, lo=lo, hi=hi)
                assert fed_sub == ref_sub, (stage, lo, hi)
                _assert_range_equal(
                    fleet.query_range(lo=lo, hi=hi, collect=True),
                    scan_over_series(reference, lo=lo, hi=hi, collect=True),
                )
            if tier == "columnar" and stage == "post-flush":
                # The cold tier actually answered from block statistics.
                full = fleet.query_aggregate()
                assert full.blocks_stat_answered > 0
        assert stages == ["mid-ingest", "pre-flush", "post-flush"]

    def test_unknown_series_raises(self):
        fleet = ShardedDatabase(n_shards=2, **_DB_KWARGS)
        with pytest.raises(EngineError):
            fleet.query_aggregate(["ghost"])

    def test_duplicate_series_rejected(self):
        fleet = ShardedDatabase(n_shards=2, **_DB_KWARGS)
        fleet.write("a", np.array([1.0, 2.0]))
        with pytest.raises(QueryError):
            fleet.query_range(["a", "a"])


class TestSingleSeriesFastPath:
    def test_only_owner_shard_reads(self):
        telemetry = Telemetry(sinks=[])
        fleet = ShardedDatabase(n_shards=4, telemetry=telemetry, **_DB_KWARGS)
        names = [f"s{i:02d}" for i in range(8)]
        datasets = _datasets(names, n_points=300)
        for name in names:
            fleet.write(name, datasets[name].tg)
        target = names[0]
        owner = shard_name(fleet.shard_of(target))
        stats = fleet.query_range(target, collect=True)
        direct = execute_range_query(
            fleet.snapshot(target), -math.inf, math.inf, collect=True
        )
        _assert_range_equal(stats, direct)
        reads = telemetry.registry.shard_values("query.count")
        assert reads.get(owner) == 1
        assert all(
            count == 0 for shard, count in reads.items() if shard != owner
        )
        registry = telemetry.registry
        assert registry.counter("federation.single_shard").value == 1
        assert registry.counter("federation.shards_pruned").value == 3

    def test_aggregate_fast_path_prunes_other_shards(self):
        telemetry = Telemetry(sinks=[])
        fleet = ShardedDatabase(n_shards=4, telemetry=telemetry, **_DB_KWARGS)
        names = [f"s{i:02d}" for i in range(8)]
        datasets = _datasets(names, n_points=300)
        for name in names:
            fleet.write(name, datasets[name].tg)
        target = names[3]
        owner = shard_name(fleet.shard_of(target))
        result = fleet.query_aggregate(target)
        direct = execute_aggregate_query(
            fleet.snapshot(target), -math.inf, math.inf
        )
        assert result == direct
        aggregates = telemetry.registry.shard_values("query.aggregate_count")
        assert aggregates.get(owner) == 1
        assert all(
            count == 0 for shard, count in aggregates.items() if shard != owner
        )


class TestFederationCache:
    def _loaded_fleet(self, n_shards=4):
        telemetry = Telemetry(sinks=[])
        fleet = ShardedDatabase(
            n_shards=n_shards, telemetry=telemetry, **_DB_KWARGS
        )
        # Pick series names until every shard owns at least two, so no
        # cache row is vacuous.
        names = []
        owned = {index: 0 for index in range(n_shards)}
        for i in range(200):
            candidate = f"s{i:03d}"
            index = fleet.shard_of(candidate)
            if owned[index] < 2:
                owned[index] += 1
                names.append(candidate)
            if all(count == 2 for count in owned.values()):
                break
        assert all(count == 2 for count in owned.values())
        datasets = _datasets(names, n_points=300)
        for name in names:
            fleet.write(name, datasets[name].tg)
        return fleet, telemetry, names, datasets

    def test_flush_invalidates_only_that_shard(self):
        fleet, telemetry, names, _ = self._loaded_fleet()
        registry = telemetry.registry
        first = fleet.query_aggregate()
        second = fleet.query_aggregate()
        assert second == first
        hits = registry.shard_values("federation.cache_hits")
        assert hits == {shard_name(i): 1 for i in range(fleet.n_shards)}
        victim = 1
        fleet.shards[victim].flush_all()
        third = fleet.query_aggregate()
        # A flush changes scan metadata (tables pruned/scanned) but can
        # never change the answer itself.
        assert (third.count, third.minimum, third.maximum, third.total) == (
            first.count, first.minimum, first.maximum, first.total
        )
        hits = registry.shard_values("federation.cache_hits")
        for index in range(fleet.n_shards):
            expected = 1 if index == victim else 2
            assert hits[shard_name(index)] == expected, shard_name(index)
        misses = registry.shard_values("federation.cache_misses")
        assert misses[shard_name(victim)] == 2

    def test_write_invalidates_owner_entry(self):
        fleet, telemetry, names, datasets = self._loaded_fleet()
        fleet.query_aggregate()
        target = names[0]
        owner = fleet.shard_of(target)
        fleet.write(target, datasets[target].tg[:50] + 1000.0)
        fleet.query_aggregate()
        hits = telemetry.registry.shard_values("federation.cache_hits")
        assert hits.get(shard_name(owner), 0) == 0
        assert all(
            hits[shard_name(i)] == 1
            for i in range(fleet.n_shards)
            if i != owner
        )

    def test_use_cache_false_bypasses(self):
        fleet, telemetry, _, _ = self._loaded_fleet(n_shards=2)
        baseline = fleet.query_aggregate(use_cache=False)
        again = fleet.query_aggregate(use_cache=False)
        assert again == baseline
        assert telemetry.registry.shard_values("federation.cache_hits") == {}

    def test_cache_is_bounded_lru(self):
        cache = FederationCache(max_entries=2)
        for index in range(4):
            cache.store(("k", index), (0,), [index])
        assert len(cache) == 2
        assert cache.lookup(("k", 3), (0,)) == [3]
        assert cache.lookup(("k", 0), (0,)) is None
        assert cache.lookup(("k", 3), (1,)) is None  # stale version
        with pytest.raises(ValueError):
            FederationCache(max_entries=0)

    def test_retune_engine_swap_invalidates(self):
        # A retune replaces the engine object; a fresh engine's epoch
        # and MemTable versions restart at zero, so only the nonce in
        # read_version keeps the old entry from aliasing the new state.
        telemetry = Telemetry(sinks=[])
        fleet = ShardedDatabase(
            n_shards=2, auto_tune=True, telemetry=telemetry, **_DB_KWARGS
        )
        names = [f"s{i:02d}" for i in range(4)]
        datasets = _datasets(names, n_points=600)
        for name in names:
            fleet.write(name, datasets[name].tg, datasets[name].ta)
        before = fleet.query_aggregate()
        switched = fleet.retune(min_observations=256)
        assert switched  # the disordered series must actually switch
        after = fleet.query_aggregate()
        assert (after.count, after.minimum, after.maximum, after.total) == (
            before.count, before.minimum, before.maximum, before.total
        )
        hits = telemetry.registry.shard_values("federation.cache_hits")
        assert hits == {}  # every shard retuned => no entry survived


@pytest.mark.skipif(not _FORK, reason="scatter pool needs fork")
class TestScatterPool:
    def _loaded(self, telemetry):
        fleet = ShardedDatabase(n_shards=4, telemetry=telemetry, **_DB_KWARGS)
        names = [f"s{i:02d}" for i in range(8)]
        datasets = _datasets(names, n_points=400)
        for name in names:
            fleet.write(name, datasets[name].tg)
        return fleet, names, datasets

    def test_scatter_equals_serial_inline(self):
        serial_bus = Telemetry(sinks=[])
        scatter_bus = Telemetry(sinks=[])
        serial_fleet, names, datasets = self._loaded(serial_bus)
        scatter_fleet, _, _ = self._loaded(scatter_bus)
        try:
            for lo, hi in [(-math.inf, math.inf), (100.0, 500.0)]:
                assert scatter_fleet.query_aggregate(
                    lo=lo, hi=hi, workers=4, use_cache=False
                ) == serial_fleet.query_aggregate(
                    lo=lo, hi=hi, workers=1, use_cache=False
                )
                _assert_range_equal(
                    scatter_fleet.query_range(
                        lo=lo, hi=hi, collect=True, workers=4, use_cache=False
                    ),
                    serial_fleet.query_range(
                        lo=lo, hi=hi, collect=True, workers=1, use_cache=False
                    ),
                )
            # Worker telemetry is absorbed: per-shard read counters are
            # indistinguishable from the serial path's.
            assert scatter_bus.registry.shard_values(
                "query.count"
            ) == serial_bus.registry.shard_values("query.count")
            assert scatter_bus.registry.shard_values(
                "query.result_points"
            ) == serial_bus.registry.shard_values("query.result_points")
            for index in range(4):
                latency = scatter_bus.registry.histogram(
                    f'federation.shard_latency_ms{{shard="{shard_name(index)}"}}'
                )
                assert latency.count == 4
        finally:
            serial_fleet.federation.close()
            scatter_fleet.federation.close()

    def test_pool_reused_until_state_changes(self):
        telemetry = Telemetry(sinks=[])
        fleet, names, datasets = self._loaded(telemetry)
        registry = telemetry.registry
        try:
            fleet.query_aggregate(workers=4, use_cache=False)
            fleet.query_range(workers=4, use_cache=False)
            assert registry.counter("federation.pool_builds").value == 1
            fleet.write(names[0], datasets[names[0]].tg[:10] + 10_000.0)
            fleet.query_aggregate(workers=4, use_cache=False)
            assert registry.counter("federation.pool_builds").value == 2
        finally:
            fleet.federation.close()

    def test_recovered_fleet_federates(self, tmp_path):
        fleet = ShardedDatabase(
            n_shards=3, durability_dir=str(tmp_path), **_DB_KWARGS
        )
        names = [f"s{i:02d}" for i in range(6)]
        datasets = _datasets(names, n_points=300)
        for name in names:
            fleet.write(name, datasets[name].tg)
        expected = fleet.query_aggregate(use_cache=False)
        fleet.checkpoint_all()
        revived = ShardedDatabase.recover(str(tmp_path))
        try:
            assert revived.query_aggregate(workers=3) == expected
        finally:
            revived.federation.close()


class TestSqlFederation:
    def test_parse_multi_series_and_star(self):
        parsed = parse_query("SELECT SUM(time) FROM a, b , c WHERE time >= 5")
        assert parsed.select == "sum"
        assert parsed.names == ("a", "b", "c")
        assert parsed.series == "a"
        star = parse_query("SELECT COUNT(*) FROM *")
        assert star.series == "*"
        assert star.names == ()
        with pytest.raises(QueryError):
            parse_query("SELECT * FROM a, a")

    def test_snapshot_target_rejects_multi_series(self):
        db = TimeSeriesDatabase(**_DB_KWARGS)
        db.write("a", np.arange(10.0))
        snapshot = db.snapshot("a")
        assert execute_sql(snapshot, "SELECT COUNT(*) FROM a") == 10
        with pytest.raises(QueryError):
            execute_sql(snapshot, "SELECT COUNT(*) FROM a, b")
        with pytest.raises(QueryError):
            execute_sql(snapshot, "SELECT COUNT(*) FROM *")

    def test_sharded_and_unsharded_sql_agree(self):
        names = [f"series-{i:02d}" for i in range(6)]
        datasets = _datasets(names, n_points=600)
        fleet = ShardedDatabase(n_shards=3, auto_tune=False, **_DB_KWARGS)
        reference = TimeSeriesDatabase(auto_tune=False, **_DB_KWARGS)
        for name in names:
            fleet.write(name, datasets[name].tg)
            reference.write(name, datasets[name].tg)
        statements = [
            "SELECT COUNT(*) FROM *",
            "SELECT SUM(time) FROM * WHERE time > 100",
            "SELECT AVG(time) FROM series-00, series-03 WHERE time <= 400",
            "SELECT MIN(time) FROM series-05",
            "SELECT MAX(time) FROM * WHERE time >= 50 AND time < 800",
        ]
        for sql in statements:
            assert execute_sql(fleet, sql) == execute_sql(reference, sql), sql
        fed = execute_sql(fleet, "SELECT * FROM *", collect=True)
        ref = execute_sql(reference, "SELECT * FROM *", collect=True)
        _assert_range_equal(fed, ref)

    def test_sum_is_bitwise_float_sum(self):
        db = TimeSeriesDatabase(auto_tune=False, **_DB_KWARGS)
        rng = np.random.default_rng(3)
        values = {}
        for name in ("a", "b"):
            tg = np.sort(rng.uniform(0.0, 1.0, 500))
            db.write(name, tg)
            values[name] = tg
        expected = 0.0
        for name in sorted(values):
            expected += float(
                execute_aggregate_query(
                    db.snapshot(name), -math.inf, math.inf
                ).total
            )
        assert execute_sql(db, "SELECT SUM(time) FROM *") == expected


class TestMergeUnits:
    def test_merge_aggregates_empty(self):
        merged = merge_aggregates([], 0.0, 1.0)
        assert merged.count == 0
        assert math.isnan(merged.minimum) and math.isnan(merged.maximum)
        assert merged.total == 0.0

    def test_merge_skips_empty_partial_extrema(self):
        empty = AggregateResult(
            lo=0.0, hi=1.0, count=0, minimum=math.nan, maximum=math.nan,
            total=0.0, tables_scanned=0, tables_pruned=0,
        )
        full = AggregateResult(
            lo=0.0, hi=1.0, count=3, minimum=0.25, maximum=0.75,
            total=1.5, tables_scanned=1, tables_pruned=2,
        )
        merged = merge_aggregates([empty, full, empty], 0.0, 1.0)
        assert merged.count == 3
        assert merged.minimum == 0.25 and merged.maximum == 0.75
        assert merged.tables_pruned == 2

    def test_merge_range_rejects_mixed_collection(self):
        db = TimeSeriesDatabase(**_DB_KWARGS)
        db.write("a", np.arange(10.0))
        snapshot = db.snapshot("a")
        collected = execute_range_query(snapshot, 0.0, 9.0, collect=True)
        metrics = execute_range_query(snapshot, 0.0, 9.0, collect=False)
        with pytest.raises(QueryError):
            merge_range_stats([collected, metrics], 0.0, 9.0)

    def test_canonical_order(self):
        db = TimeSeriesDatabase(**_DB_KWARGS)
        for name in ("c", "a", "b"):
            db.write(name, np.arange(4.0))
        assert canonical_series_order(db, None) == ["a", "b", "c"]
        assert canonical_series_order(db, "b") == ["b"]
        assert canonical_series_order(db, ["c", "a"]) == ["c", "a"]
        with pytest.raises(QueryError):
            canonical_series_order(db, [])


class TestFleetCacheKeys:
    def test_fleet_changes_experiment_key(self):
        base = experiment_key("exp", code="c", datasets="d")
        sharded = experiment_key(
            "exp", code="c", datasets="d",
            fleet=fleet_fingerprint(ShardRouter(4)),
        )
        assert base != sharded
        other_mode = experiment_key(
            "exp", code="c", datasets="d",
            fleet=fleet_fingerprint(
                ShardRouter(4, mode="range", boundaries=["b", "g", "p"])
            ),
        )
        assert other_mode != sharded

    def test_single_database_is_canonical_one_shard_fleet(self):
        implicit = experiment_key("exp", code="c", datasets="d")
        explicit = experiment_key(
            "exp", code="c", datasets="d", fleet=fleet_fingerprint(None)
        )
        one_shard = experiment_key(
            "exp", code="c", datasets="d",
            fleet=fleet_fingerprint(ShardRouter(1)),
        )
        assert implicit == explicit == one_shard

    def test_range_boundaries_distinguish_keys(self):
        a = fleet_fingerprint(
            ShardRouter(3, mode="range", boundaries=["g", "p"])
        )
        b = fleet_fingerprint(
            ShardRouter(3, mode="range", boundaries=["h", "p"])
        )
        assert a != b


class TestFederationReport:
    def test_render_contains_attribution(self):
        telemetry = Telemetry(sinks=[])
        fleet = ShardedDatabase(n_shards=3, telemetry=telemetry, **_DB_KWARGS)
        names = [f"s{i:02d}" for i in range(6)]
        datasets = _datasets(names, n_points=200)
        for name in names:
            fleet.write(name, datasets[name].tg)
        fleet.query_aggregate()
        fleet.query_aggregate()
        fleet.query_range(names[0])
        text = render_federation_report(fleet, source="unit")
        assert "== federation report: unit" in text
        assert "3 federated queries (1 single-shard fast path)" in text
        for index in range(3):
            assert shard_name(index) in text
        assert "cache_hits" in text and "lat_mean_ms" in text

    def test_cli_subcommand_verifies_bitwise(self, capsys):
        from repro.cli import main

        code = main(
            [
                "federated-report",
                "--shards", "3",
                "--series", "4",
                "--points", "400",
                "--windows", "3",
                "--workers", "1",
                "--seed", "5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "bit-identical to single database: yes" in out
