"""Conformance and caching tests for the read-path acceleration.

The pruning index is a pure access-path optimisation: for every engine
(including composed triples no monolith implements), every query window
and every ingest stage, the pruned path must visit exactly the tables a
full metadata scan would visit and return bit-identical results.  The
structure-epoch snapshot cache must serve identical snapshots while the
engine is quiescent and invalidate on any mutation or restore.
"""

import numpy as np
import pytest

from tests.conformance_support import (
    CHUNK,
    PRUNING_ENGINE_FACTORIES,
    WORKLOADS,
)
from repro.errors import QueryError
from repro.lsm.adaptive import AdaptiveEngine
from repro.lsm.base import Snapshot
from repro.lsm.memtable import EMPTY_IDS, EMPTY_TG, MemTable
from repro.lsm.pruning import TableIndex
from repro.query.aggregation import execute_aggregate_query
from repro.query.executor import execute_range_query
from repro.workloads import TABLE_II

N_POINTS = 4000


def _build_engine(engine_key, workload, stop=None):
    engine = PRUNING_ENGINE_FACTORIES[engine_key](None)
    dataset = TABLE_II[workload].build(n_points=N_POINTS, seed=11)
    adaptive = isinstance(engine, AdaptiveEngine)
    stop = len(dataset) if stop is None else stop
    for pos in range(0, stop, CHUNK):
        chunk_tg = dataset.tg[pos : pos + CHUNK]
        if adaptive:
            engine.ingest(chunk_tg, dataset.ta[pos : pos + CHUNK])
        else:
            engine.ingest(chunk_tg)
    return engine, dataset


def _windows(snapshot, rng, count=24):
    """Random query windows spanning narrow, wide, empty and degenerate."""
    tgs = [t for table in snapshot.tables for t in (table.min_tg, table.max_tg)]
    lo_all = min(tgs) if tgs else 0.0
    hi_all = max(tgs) if tgs else 1.0
    span = max(hi_all - lo_all, 1.0)
    windows = []
    for _ in range(count):
        lo = rng.uniform(lo_all - 0.1 * span, hi_all + 0.1 * span)
        width = span * rng.choice([0.0, 0.001, 0.01, 0.1, 1.5])
        windows.append((lo, lo + width))
    windows.append((lo_all, hi_all))          # everything
    windows.append((hi_all + span, hi_all + 2 * span))  # nothing
    return windows


def _assert_queries_match(snapshot):
    assert snapshot.index is not None
    reference = Snapshot(tables=snapshot.tables, memtables=snapshot.memtables)
    rng = np.random.default_rng(7)
    for lo, hi in _windows(snapshot, rng):
        pruned = execute_range_query(snapshot, lo, hi, collect=True)
        full = execute_range_query(reference, lo, hi, collect=True)
        assert pruned.result_points == full.result_points
        assert pruned.disk_points_read == full.disk_points_read
        assert pruned.files_touched == full.files_touched
        assert pruned.memtable_points_scanned == full.memtable_points_scanned
        assert pruned.tables_pruned == full.tables_pruned
        assert np.array_equal(pruned.rows, full.rows)
        assert np.array_equal(pruned.row_ids, full.row_ids)
        # The indexed path consults only what it touches; the fallback
        # walks every table's metadata.
        assert pruned.tables_consulted == pruned.files_touched
        assert full.tables_consulted == len(snapshot.tables)
        agg_pruned = execute_aggregate_query(snapshot, lo, hi)
        agg_full = execute_aggregate_query(reference, lo, hi)
        assert agg_pruned == agg_full


@pytest.mark.parametrize("engine_key", sorted(PRUNING_ENGINE_FACTORIES))
@pytest.mark.parametrize("workload", WORKLOADS)
def test_pruned_queries_match_full_scan(engine_key, workload):
    """Pruned results are bit-identical to full scans at every stage."""
    engine, _ = _build_engine(engine_key, workload)
    _assert_queries_match(engine.snapshot())   # memtables still populated
    engine.flush_all()
    _assert_queries_match(engine.snapshot())   # disk-only


@pytest.mark.parametrize("engine_key", sorted(PRUNING_ENGINE_FACTORIES))
def test_pruned_queries_match_mid_ingest(engine_key):
    """Snapshots taken mid-workload (fresh loose files) also agree."""
    engine, _ = _build_engine(engine_key, "M8", stop=N_POINTS // 3)
    _assert_queries_match(engine.snapshot())


def test_table_index_rejects_inverted_range_and_unknown_kind():
    index = TableIndex([])
    with pytest.raises(QueryError):
        index.overlapping(2.0, 1.0)
    with pytest.raises(QueryError):
        TableIndex([("diagonal", [object()])])


def test_snapshot_cached_until_mutation():
    engine, dataset = _build_engine("conventional", "M1")
    engine.flush_all()
    first = engine.snapshot()
    assert engine.snapshot() is first          # quiescent: cache hit
    engine.ingest(dataset.tg[-1:] + 1e9)       # memtable-only change
    second = engine.snapshot()
    assert second is not first
    assert second.index is first.index         # disk unchanged: index reused
    epoch = engine.structure_epoch
    engine.flush_all()                         # structural change
    assert engine.structure_epoch > epoch
    third = engine.snapshot()
    assert third is not second
    assert third.index is not second.index


def test_restore_bumps_epoch_and_queries_match(tmp_path):
    engine, _ = _build_engine("conventional", "M1")
    engine.flush_all()
    path = str(tmp_path / "ckpt.npz")
    engine.save_checkpoint(path)
    restored = type(engine).restore(path)
    # _restore_state marks a structure change, so nothing stale (from a
    # subclass populating caches pre-restore) can survive it.
    assert restored.structure_epoch > 0
    stats = execute_range_query(
        restored.snapshot(), -np.inf, np.inf, collect=True
    )
    reference = execute_range_query(
        engine.snapshot(), -np.inf, np.inf, collect=True
    )
    assert np.array_equal(stats.rows, reference.rows)
    assert stats.files_touched == reference.files_touched


def test_memtable_views_are_read_only_and_shared_when_empty():
    table = MemTable(capacity=8)
    assert table.peek_tg() is EMPTY_TG
    assert table.peek_ids() is EMPTY_IDS
    table.extend(np.asarray([3.0, 1.0]), np.asarray([0, 1], dtype=np.int64))
    tg = table.peek_tg()
    assert table.peek_tg() is tg               # cached per version
    with pytest.raises(ValueError):
        tg[0] = 99.0
    stale = tg.copy()
    table.extend(np.asarray([2.0]), np.asarray([2], dtype=np.int64))
    assert np.array_equal(tg, stale)           # old view untouched
    table.clear()
    assert table.peek_tg() is EMPTY_TG
