"""Tests for LSM building blocks: MemTable, SSTable, Run, WriteStats."""

import numpy as np
import pytest

from repro.errors import EngineError
from repro.lsm import MemTable, Run, SSTable, WriteStats, build_sstables
from repro.lsm.wa_tracker import CompactionEvent


def _table(values):
    tg = np.asarray(values, dtype=np.float64)
    return SSTable(tg=tg, ids=np.arange(tg.size, dtype=np.int64))


class TestMemTable:
    def test_extend_and_room(self):
        table = MemTable(capacity=5)
        table.extend(np.array([3.0, 1.0]), np.array([0, 1]))
        assert len(table) == 2
        assert table.room == 3
        assert not table.full

    def test_full_flag(self):
        table = MemTable(capacity=2)
        table.extend(np.array([1.0, 2.0]), np.array([0, 1]))
        assert table.full

    def test_overflow_rejected(self):
        table = MemTable(capacity=2)
        with pytest.raises(EngineError):
            table.extend(np.array([1.0, 2.0, 3.0]), np.array([0, 1, 2]))

    def test_drain_sorts_by_generation(self):
        table = MemTable(capacity=4)
        table.extend(np.array([3.0, 1.0]), np.array([10, 11]))
        table.extend(np.array([2.0]), np.array([12]))
        tg, ids = table.drain()
        assert list(tg) == [1.0, 2.0, 3.0]
        assert list(ids) == [11, 12, 10]
        assert table.empty

    def test_drain_empty(self):
        tg, ids = MemTable(capacity=2).drain()
        assert tg.size == 0 and ids.size == 0

    def test_misaligned_arrays_rejected(self):
        table = MemTable(capacity=5)
        with pytest.raises(EngineError):
            table.extend(np.array([1.0]), np.array([1, 2]))


class TestSSTable:
    def test_bounds_and_len(self):
        table = _table([1.0, 2.0, 5.0])
        assert table.min_tg == 1.0
        assert table.max_tg == 5.0
        assert len(table) == 3

    def test_overlaps(self):
        table = _table([10.0, 20.0])
        assert table.overlaps(5.0, 10.0)
        assert table.overlaps(15.0, 16.0)
        assert not table.overlaps(21.0, 30.0)
        assert not table.overlaps(0.0, 9.0)

    def test_count_in_range(self):
        table = _table([1.0, 2.0, 3.0, 4.0])
        assert table.count_in_range(2.0, 3.0) == 2
        assert table.count_in_range(0.0, 10.0) == 4
        assert table.count_in_range(5.0, 6.0) == 0

    def test_rejects_empty_or_unsorted(self):
        with pytest.raises(EngineError):
            SSTable(tg=np.array([]), ids=np.array([], dtype=np.int64))
        with pytest.raises(EngineError):
            SSTable(tg=np.array([2.0, 1.0]), ids=np.array([0, 1]))

    def test_unique_table_ids(self):
        assert _table([1.0]).table_id != _table([1.0]).table_id

    def test_build_sstables_chunks(self):
        tg = np.arange(10, dtype=np.float64)
        ids = np.arange(10, dtype=np.int64)
        tables = build_sstables(tg, ids, sstable_size=4)
        assert [len(t) for t in tables] == [4, 4, 2]
        assert tables[0].min_tg == 0.0 and tables[-1].max_tg == 9.0


class TestRun:
    def test_append_and_bounds(self):
        run = Run()
        assert run.empty and run.max_tg == -np.inf
        run.append([_table([1.0, 2.0]), _table([3.0, 4.0])])
        assert run.max_tg == 4.0
        assert run.min_tg == 1.0
        assert run.total_points == 4

    def test_append_overlap_rejected(self):
        run = Run()
        run.append([_table([1.0, 5.0])])
        with pytest.raises(EngineError):
            run.append([_table([4.0, 6.0])])

    def test_overlap_slice_finds_contiguous_range(self):
        run = Run()
        run.append([_table([0.0, 9.0]), _table([10.0, 19.0]), _table([20.0, 29.0])])
        region = run.overlap_slice(12.0, 22.0)
        assert (region.start, region.stop) == (1, 3)
        assert len(run.overlapping_tables(12.0, 22.0)) == 2

    def test_overlap_slice_gap_insert_position(self):
        run = Run()
        run.append([_table([0.0, 9.0]), _table([20.0, 29.0])])
        region = run.overlap_slice(12.0, 15.0)
        assert region.start == region.stop == 1

    def test_replace_keeps_invariants(self):
        run = Run()
        run.append([_table([0.0, 9.0]), _table([10.0, 19.0]), _table([20.0, 29.0])])
        region = run.overlap_slice(10.0, 19.0)
        removed = run.replace(region, [_table([10.0, 15.0]), _table([16.0, 19.0])])
        assert len(removed) == 1
        assert len(run) == 4
        run.check_invariants()

    def test_replace_overlapping_result_rejected(self):
        run = Run()
        run.append([_table([0.0, 9.0]), _table([20.0, 29.0])])
        with pytest.raises(EngineError):
            run.replace(slice(1, 1), [_table([5.0, 25.0])])

    def test_count_points_above(self):
        run = Run()
        run.append([_table([0.0, 1.0, 2.0]), _table([3.0, 4.0]), _table([5.0, 6.0])])
        assert run.count_points_above(2.5) == 4
        assert run.count_points_above(-1.0) == 7
        assert run.count_points_above(6.0) == 0
        assert run.count_points_above(0.5) == 6

    def test_clear(self):
        run = Run()
        run.append([_table([1.0, 2.0])])
        removed = run.clear()
        assert len(removed) == 1
        assert run.empty
        assert run.count_points_above(0.0) == 0

    def test_inverted_range_rejected(self):
        run = Run()
        with pytest.raises(EngineError):
            run.overlap_slice(5.0, 1.0)


class TestWriteStats:
    def test_wa_counting(self):
        stats = WriteStats()
        stats.record_ingest(10)
        stats.record_written(np.arange(10, dtype=np.int64))
        stats.record_written(np.arange(5, dtype=np.int64))
        assert stats.disk_writes == 15
        assert stats.write_amplification == pytest.approx(1.5)
        counts = stats.write_counts
        assert list(counts) == [2] * 5 + [1] * 5

    def test_wa_nan_before_ingest(self):
        assert np.isnan(WriteStats().write_amplification)

    def test_counters_grow(self):
        stats = WriteStats(initial_capacity=2)
        stats.record_written(np.array([100], dtype=np.int64))
        assert stats.write_counts[100] == 1

    def test_event_log_and_merge_filter(self):
        stats = WriteStats()
        stats.record_event(CompactionEvent("flush", 10, 10, 0, 0, 1))
        stats.record_event(CompactionEvent("merge", 20, 10, 30, 2, 3))
        assert len(stats.merge_events()) == 1
        assert stats.merge_events()[0].disk_writes == 40

    def test_wa_timeline(self):
        stats = WriteStats()
        stats.record_ingest(20)
        stats.record_event(CompactionEvent("flush", 10, 10, 0, 0, 1))
        stats.record_event(CompactionEvent("merge", 20, 10, 10, 1, 1))
        edges, wa = stats.wa_timeline(window_points=10)
        assert list(edges) == [10, 20]
        assert wa[0] == pytest.approx(1.0)
        assert wa[1] == pytest.approx(2.0)

    def test_wa_timeline_empty(self):
        edges, wa = WriteStats().wa_timeline(window_points=10)
        assert edges.size == 0 and wa.size == 0

    def test_negative_ingest_rejected(self):
        with pytest.raises(EngineError):
            WriteStats().record_ingest(-1)
