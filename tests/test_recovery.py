"""Durability tests: WAL framing, checkpoints, crash recovery."""

import numpy as np
import pytest

from repro import (
    AdaptiveEngine,
    ConventionalEngine,
    ExponentialDelay,
    IoTDBStyleEngine,
    LsmConfig,
    MultiLevelEngine,
    SeparationEngine,
    TieredEngine,
    TimeSeriesDatabase,
    WriteAheadLog,
    read_wal,
    recover_adaptive,
    recover_engine,
)
from repro.errors import (
    CheckpointCorruptError,
    InjectedCrash,
    RecoveryError,
    WalError,
)
from repro.faults import FaultInjector, FaultPlan
from repro.lsm.checkpoint import read_checkpoint
from repro.workloads import generate_synthetic


def _dataset(n=4000, seed=0):
    return generate_synthetic(
        n, dt=1.0, delay=ExponentialDelay(mean=40.0), seed=seed
    )


def _assert_same_state(left, right):
    """Two engines hold bit-identical durable state."""
    ls, rs = left.snapshot(), right.snapshot()
    assert ls.total_points == rs.total_points
    assert ls.disk_points == rs.disk_points
    for attr in ("tg", "ids"):
        l_disk = np.concatenate(
            [getattr(t, attr) for t in ls.tables]
        ) if ls.tables else np.array([])
        r_disk = np.concatenate(
            [getattr(t, attr) for t in rs.tables]
        ) if rs.tables else np.array([])
        np.testing.assert_array_equal(np.sort(l_disk), np.sort(r_disk))
    assert left.ingested_points == right.ingested_points
    np.testing.assert_array_equal(
        left.stats.write_counts[: left.stats.user_points],
        right.stats.write_counts[: right.stats.user_points],
    )
    assert left.stats.disk_writes == right.stats.disk_writes


ENGINE_FACTORIES = {
    "pi_c": lambda cfg: ConventionalEngine(cfg),
    "pi_s": lambda cfg: SeparationEngine(
        LsmConfig(
            cfg.memory_budget, cfg.sstable_size, seq_capacity=48,
            wal_path=cfg.wal_path,
        )
    ),
    "iotdb": lambda cfg: IoTDBStyleEngine(cfg, l1_file_limit=4),
    "multilevel": lambda cfg: MultiLevelEngine(cfg, size_ratio=4, max_levels=4),
    "tiered": lambda cfg: TieredEngine(cfg, tier_fanout=3, max_levels=4),
}


class TestWal:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "a.wal")
        wal = WriteAheadLog(path)
        tg0 = np.array([3.0, 1.0, 2.0])
        tg1 = np.array([5.0, 4.0])
        ta1 = np.array([6.0, 7.0])
        wal.append(tg0, start_id=0)
        wal.append(tg1, start_id=3, ta=ta1)
        wal.close()
        result = read_wal(path)
        assert not result.torn
        assert [r.start_id for r in result.records] == [0, 3]
        np.testing.assert_array_equal(result.records[0].tg, tg0)
        assert result.records[0].ta is None
        np.testing.assert_array_equal(result.records[1].ta, ta1)
        assert result.total_points == 5

    def test_missing_file_reads_empty(self, tmp_path):
        result = read_wal(str(tmp_path / "never-written.wal"))
        assert result.records == [] and not result.torn

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.wal"
        path.write_bytes(b"not a wal at all")
        with pytest.raises(WalError):
            read_wal(str(path))
        with pytest.raises(WalError):
            WriteAheadLog(str(path)).append(np.array([1.0]), start_id=0)

    def test_torn_tail_detected_and_truncated(self, tmp_path):
        path = str(tmp_path / "torn.wal")
        wal = WriteAheadLog(path)
        wal.append(np.array([1.0, 2.0]), start_id=0)
        wal.close()
        with open(path, "ab") as handle:
            handle.write(b"\x07\x00\x00")  # partial frame header
        result = read_wal(path)
        assert result.torn and result.torn_bytes == 3
        assert len(result.records) == 1
        result.truncate()
        clean = read_wal(path)
        assert not clean.torn and len(clean.records) == 1

    def test_injected_torn_append(self, tmp_path):
        path = str(tmp_path / "inj.wal")
        faults = FaultInjector(FaultPlan(seed=7, torn_wal_append_at=2))
        wal = WriteAheadLog(path, faults=faults)
        wal.append(np.array([1.0]), start_id=0)
        with pytest.raises(InjectedCrash):
            wal.append(np.array([2.0, 3.0]), start_id=1)
        wal.close()
        result = read_wal(path)
        assert result.torn and len(result.records) == 1
        assert ("wal.append", "torn") in faults.injected


@pytest.mark.parametrize("key", sorted(ENGINE_FACTORIES))
class TestCheckpointRoundTrip:
    def test_restore_continues_bit_identically(self, key, tmp_path):
        dataset = _dataset(3000, seed=3)
        head, tail = dataset.tg[:1800], dataset.tg[1800:]
        engine = ENGINE_FACTORIES[key](LsmConfig(64, 32))
        engine.ingest(head)
        ckpt = str(tmp_path / "mid.ckpt")
        engine.save_checkpoint(ckpt)
        restored = type(engine).restore(ckpt)
        _assert_same_state(engine, restored)
        engine.ingest(tail)
        restored.ingest(tail)
        _assert_same_state(engine, restored)
        restored.verify()

    def test_corrupt_checkpoint_detected(self, key, tmp_path):
        engine = ENGINE_FACTORIES[key](LsmConfig(64, 32))
        engine.ingest(_dataset(1000, seed=1).tg)
        ckpt = str(tmp_path / "bad.ckpt")
        engine.save_checkpoint(ckpt)
        FaultInjector(FaultPlan(seed=5)).corrupt_file(ckpt, spare_prefix=8)
        with pytest.raises(CheckpointCorruptError):
            read_checkpoint(ckpt)
        with pytest.raises(CheckpointCorruptError):
            type(engine).restore(ckpt)


class TestRecoverEngine:
    def test_full_wal_replay(self, tmp_path):
        wal_path = str(tmp_path / "e.wal")
        dataset = _dataset(2500, seed=2)
        engine = ConventionalEngine(LsmConfig(64, 32, wal_path=wal_path))
        for lo in range(0, 2500, 300):
            engine.ingest(dataset.tg[lo : lo + 300])
        engine.wal.close()
        report = recover_engine(
            ConventionalEngine, wal_path, config=LsmConfig(64, 32)
        )
        assert not report.checkpoint_used and report.verified
        assert report.replayed_points == 2500
        _assert_same_state(engine, report.engine)

    def test_checkpoint_plus_tail_replay(self, tmp_path):
        wal_path = str(tmp_path / "e.wal")
        ckpt_path = str(tmp_path / "e.ckpt")
        dataset = _dataset(2500, seed=4)
        engine = SeparationEngine(
            LsmConfig(64, 32, seq_capacity=48, wal_path=wal_path)
        )
        for lo in range(0, 2500, 250):
            engine.ingest(dataset.tg[lo : lo + 250])
            if lo == 1000:
                engine.save_checkpoint(ckpt_path)
        engine.wal.close()
        report = recover_engine(
            SeparationEngine,
            wal_path,
            checkpoint_path=ckpt_path,
            config=LsmConfig(64, 32, seq_capacity=48),
        )
        assert report.checkpoint_used and report.verified
        assert report.replayed_points == 2500 - 1250
        assert report.durable_points == 2500
        _assert_same_state(engine, report.engine)

    def test_corrupt_checkpoint_falls_back_to_full_replay(self, tmp_path):
        wal_path = str(tmp_path / "e.wal")
        ckpt_path = str(tmp_path / "e.ckpt")
        dataset = _dataset(2000, seed=5)
        engine = ConventionalEngine(LsmConfig(64, 32, wal_path=wal_path))
        engine.ingest(dataset.tg[:1000])
        engine.save_checkpoint(ckpt_path)
        engine.ingest(dataset.tg[1000:])
        engine.wal.close()
        FaultInjector(FaultPlan(seed=9)).corrupt_file(ckpt_path, spare_prefix=8)
        report = recover_engine(
            ConventionalEngine,
            wal_path,
            checkpoint_path=ckpt_path,
            config=LsmConfig(64, 32),
        )
        assert report.checkpoint_corrupt and not report.checkpoint_used
        assert report.replayed_points == 2000
        _assert_same_state(engine, report.engine)

    def test_adaptive_full_replay(self, tmp_path):
        wal_path = str(tmp_path / "a.wal")
        dataset = _dataset(3000, seed=6)
        engine = AdaptiveEngine(
            LsmConfig(64, 32, wal_path=wal_path), check_interval=512
        )
        for lo in range(0, 3000, 400):
            engine.ingest(
                dataset.tg[lo : lo + 400], dataset.ta[lo : lo + 400]
            )
        engine.wal.close()
        report = recover_adaptive(
            wal_path,
            config=LsmConfig(64, 32),
            engine_kwargs={"check_interval": 512},
        )
        assert report.verified
        assert report.durable_points == 3000
        recovered = report.engine
        assert recovered.policy_name == engine.policy_name
        np.testing.assert_array_equal(
            recovered.stats.write_counts[:3000],
            engine.stats.write_counts[:3000],
        )
        assert recovered.stats.disk_writes == engine.stats.disk_writes

    def test_adaptive_wal_without_ta_rejected(self, tmp_path):
        wal_path = str(tmp_path / "plain.wal")
        wal = WriteAheadLog(wal_path)
        wal.append(np.array([1.0, 2.0]), start_id=0)
        wal.close()
        with pytest.raises(RecoveryError):
            recover_adaptive(wal_path, config=LsmConfig(64, 32))


class TestDatabaseDurability:
    def test_checkpoint_all_and_recover(self, tmp_path):
        state_dir = str(tmp_path / "state")
        db = TimeSeriesDatabase(
            memory_budget_per_series=64,
            sstable_size=32,
            durability_dir=state_dir,
        )
        datasets = {
            "plain": _dataset(2000, seed=10),
            "split": _dataset(2000, seed=11),
        }
        db.create_series("split", seq_capacity=24)
        for name, dataset in datasets.items():
            db.write(name, dataset.tg, dataset.ta)
        db.checkpoint_all()
        # More writes after the checkpoint: recovery replays the WAL tail.
        extra = _dataset(500, seed=12)
        db.write("plain", extra.tg, extra.ta)

        revived = TimeSeriesDatabase.recover(state_dir)
        assert sorted(revived.series_names()) == ["plain", "split"]
        for name in datasets:
            original = db.series(name).engine
            recovered = revived.series(name).engine
            recovered.verify()
            _assert_same_state(original, recovered)

    def test_recover_without_manifest_fails(self, tmp_path):
        with pytest.raises(RecoveryError):
            TimeSeriesDatabase.recover(str(tmp_path / "nothing"))
