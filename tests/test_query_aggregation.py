"""Tests for aggregate queries with metadata pruning."""

import numpy as np
import pytest

from repro import (
    ConventionalEngine,
    LsmConfig,
    QueryError,
    execute_aggregate_query,
)


@pytest.fixture()
def engine():
    eng = ConventionalEngine(LsmConfig(memory_budget=10, sstable_size=10))
    eng.ingest(np.arange(100, dtype=np.float64))
    eng.flush_all()
    return eng


class TestAggregateQuery:
    def test_count_min_max_mean(self, engine):
        result = execute_aggregate_query(engine.snapshot(), 10.0, 19.0)
        assert result.count == 10
        assert result.minimum == 10.0
        assert result.maximum == 19.0
        assert result.mean == pytest.approx(14.5)
        assert result.total == pytest.approx(sum(range(10, 20)))

    def test_pruning_covers_interior_tables(self, engine):
        # [5, 74] fully covers tables [10..19] ... [60..69]; the two
        # boundary tables are scanned.
        result = execute_aggregate_query(engine.snapshot(), 5.0, 74.0)
        assert result.count == 70
        assert result.tables_pruned == 6
        assert result.tables_scanned == 2

    def test_exact_table_bounds_fully_pruned(self, engine):
        result = execute_aggregate_query(engine.snapshot(), 10.0, 29.0)
        assert result.tables_pruned == 2
        assert result.tables_scanned == 0
        assert result.count == 20

    def test_empty_range(self, engine):
        result = execute_aggregate_query(engine.snapshot(), 200.0, 300.0)
        assert result.count == 0
        assert np.isnan(result.minimum)
        assert np.isnan(result.mean)

    def test_memtable_contributions(self):
        eng = ConventionalEngine(LsmConfig(memory_budget=10, sstable_size=10))
        eng.ingest(np.arange(15, dtype=np.float64))  # 10 flushed, 5 buffered
        result = execute_aggregate_query(eng.snapshot(), 8.0, 12.0)
        assert result.count == 5
        assert result.maximum == 12.0

    def test_matches_naive_reference(self, rng):
        eng = ConventionalEngine(LsmConfig(memory_budget=16, sstable_size=16))
        tg = rng.permutation(500).astype(np.float64)
        eng.ingest(tg)
        snapshot = eng.snapshot()
        for _ in range(20):
            lo = float(rng.uniform(0, 400))
            hi = lo + float(rng.uniform(1, 150))
            result = execute_aggregate_query(snapshot, lo, hi)
            inside = tg[(tg >= lo) & (tg <= hi)]
            assert result.count == inside.size
            if inside.size:
                assert result.minimum == inside.min()
                assert result.maximum == inside.max()
                assert result.total == pytest.approx(inside.sum())

    def test_inverted_range_rejected(self, engine):
        with pytest.raises(QueryError):
            execute_aggregate_query(engine.snapshot(), 5.0, 1.0)
