"""Smoke tests: every experiment runs end-to-end at a tiny scale.

These do not validate the reproduction claims (the benchmarks do, at a
meaningful scale); they guarantee each module stays runnable.
"""

import pytest

from repro.experiments import experiment_ids, run_experiment

#: Tiny-scale overrides for the slower experiments.
_SCALE = {
    "fig05": 0.05,
    "fig09": 0.05,
    "fig10": 0.1,
    "fig12": 0.1,
    "fig13": 0.1,
    "fig14": 0.1,
    "fig17": 0.12,
    "ablation_drift": 0.1,
}


@pytest.mark.parametrize("experiment_id", experiment_ids())
def test_experiment_runs(experiment_id):
    result = run_experiment(experiment_id, scale=_SCALE.get(experiment_id, 0.1))
    assert result.experiment_id == experiment_id
    assert result.tables
    rendered = result.render()
    assert result.title in rendered
    for table in result.tables:
        assert table.rows, f"{experiment_id}: empty table {table.caption!r}"
