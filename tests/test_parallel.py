"""Parallel subsystem: pool, telemetry merge, result cache, equivalence.

The contract under test is the one ``repro.parallel`` documents: any
driver run with ``workers=N`` must produce results byte-identical to the
serial path, worker telemetry must fold back into totals equal to a
serial run's, and the content-hash cache must hit only when nothing
relevant changed.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import LogNormalDelay, TelemetryError
from repro.errors import CacheError, ExperimentError, ParallelError
from repro.experiments.registry import run_experiment
from repro.experiments.runner import sweep_wa_vs_nseq
from repro.faults.crashtest import run_crash_test
from repro.obs import MetricsRegistry
from repro.obs.telemetry import (
    configure_telemetry,
    global_telemetry,
    reset_global_telemetry,
)
from repro.parallel import (
    ResultCache,
    Task,
    code_fingerprint,
    dataset_fingerprint,
    experiment_key,
    resolve_workers,
    run_experiments,
    run_tasks,
    sweep_wa_vs_nseq_parallel,
    task_seed,
)
from repro.workloads import generate_synthetic

_DELAY = LogNormalDelay(5.0, 2.0)
_DT = 50.0


def _square(value, seed=None):
    return value * value, seed


def _ingest_with_telemetry(n_points: int, seed: int) -> float:
    """Task fn reporting engine counters through the process-global bus."""
    from repro import ConventionalEngine, LsmConfig

    dataset = generate_synthetic(n_points, dt=_DT, delay=_DELAY, seed=seed)
    engine = ConventionalEngine(
        LsmConfig(256, 256), telemetry=global_telemetry()
    )
    engine.ingest(dataset.tg)
    engine.flush_all()
    return float(engine.write_amplification)


class TestPool:
    def test_serial_and_parallel_results_identical_in_task_order(self):
        tasks = [Task(fn=_square, args=(i,)) for i in range(8)]
        serial = run_tasks(tasks, workers=1)
        parallel = run_tasks(tasks, workers=3)
        assert serial == [(i * i, None) for i in range(8)]
        assert parallel == serial

    def test_task_seed_is_deterministic_and_distinct(self):
        seeds = [task_seed(123, i) for i in range(16)]
        assert seeds == [task_seed(123, i) for i in range(16)]
        assert len(set(seeds)) == len(seeds)
        assert task_seed(124, 0) != task_seed(123, 0)
        with pytest.raises(ParallelError):
            task_seed(123, -1)

    def test_task_seed_is_injected_into_kwargs(self):
        tasks = [Task(fn=_square, args=(2,), seed=task_seed(7, 0))]
        ((value, seed),) = run_tasks(tasks, workers=1)
        assert value == 4
        assert seed == task_seed(7, 0)

    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(4) == 4
        assert resolve_workers(-1) >= 1
        with pytest.raises(ParallelError):
            resolve_workers(-2)


class TestMetricsMerge:
    def test_counters_add_and_gauges_take_last_write(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("n").inc(3)
        right.counter("n").inc(4)
        right.counter("only_right").inc()
        left.gauge("depth").set(2.0)
        right.gauge("depth").set(5.0)
        left.merge(right)
        assert left.counter("n").value == 7
        assert left.counter("only_right").value == 1
        assert left.gauge("depth").value == 5.0

    def test_histograms_merge_bucketwise(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        for value in (0.5, 3.0):
            left.histogram("lat", buckets=(1.0, 10.0)).observe(value)
        for value in (0.7, 50.0):
            right.histogram("lat", buckets=(1.0, 10.0)).observe(value)
        left.merge(right)
        merged = left.histogram("lat", buckets=(1.0, 10.0))
        assert merged.count == 4
        assert merged.bucket_counts == [2, 1, 1]
        assert merged.total == pytest.approx(54.2)
        assert merged.max == 50.0

    def test_histogram_merge_rejects_mismatched_bounds(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.histogram("lat", buckets=(1.0, 10.0)).observe(0.5)
        right.histogram("lat", buckets=(2.0, 20.0)).observe(0.5)
        with pytest.raises(TelemetryError):
            left.merge(right)


class TestTelemetryMerge:
    @pytest.fixture(autouse=True)
    def _clean_global_bus(self):
        reset_global_telemetry()
        yield
        reset_global_telemetry()

    def _snapshot(self, workers: int) -> dict:
        bus = configure_telemetry(sink="memory")
        tasks = [
            Task(
                fn=_ingest_with_telemetry,
                args=(2_000, seed),
                label=f"ingest-{seed}",
            )
            for seed in (1, 2, 3)
        ]
        results = run_tasks(tasks, workers=workers, telemetry=bus)
        payload = bus.snapshot_payload()
        reset_global_telemetry()
        return {"results": results, **payload}

    def test_merged_counters_equal_serial_totals(self):
        serial = self._snapshot(workers=1)
        merged = self._snapshot(workers=2)
        assert merged["results"] == serial["results"]
        assert serial["metrics"]["counters"]["ingest.points"] == 6_000
        assert (
            merged["metrics"]["counters"] == serial["metrics"]["counters"]
        )
        # Histograms record span *durations* — wall-clock, so bucket
        # placement varies run to run; the observation counts must not.
        assert set(merged["metrics"]["histograms"]) == set(
            serial["metrics"]["histograms"]
        )
        for name, data in serial["metrics"]["histograms"].items():
            other = merged["metrics"]["histograms"][name]
            assert other["count"] == data["count"]
            assert sum(other["bucket_counts"]) == sum(data["bucket_counts"])

    def test_absorbed_events_carry_worker_tags(self):
        merged = self._snapshot(workers=2)
        tagged = [e for e in merged["events"] if "worker" in e]
        assert tagged, "parallel run should forward worker-tagged events"
        assert {e["worker"] for e in tagged} <= {
            "ingest-1",
            "ingest-2",
            "ingest-3",
        }

    def test_disabled_bus_absorbs_nothing(self):
        bus = global_telemetry()  # NULL_TELEMETRY after reset
        assert not bus.enabled
        bus.absorb({"metrics": {"counters": {"x": 1}}})
        assert bus.snapshot_payload()["metrics"]["counters"] == {}


class TestResultCache:
    def test_roundtrip_preserves_render(self, tmp_path):
        result = run_experiment("concepts", scale=0.05, seed=5)
        cache = ResultCache(tmp_path)
        key = experiment_key("concepts", scale=0.05, seed=5)
        assert cache.load(key) is None
        cache.store(key, result)
        loaded = cache.load(key)
        assert loaded.render() == result.render()
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)
        assert len(cache) == 1

    def test_key_changes_with_inputs_and_code(self):
        base = experiment_key("fig05", scale=1.0, seed=None)
        assert base == experiment_key("fig05", scale=1.0, seed=None)
        assert base != experiment_key("fig07", scale=1.0, seed=None)
        assert base != experiment_key("fig05", scale=0.5, seed=None)
        assert base != experiment_key("fig05", scale=1.0, seed=9)
        assert base != experiment_key("fig05", code="deadbeef")
        assert base != experiment_key("fig05", datasets="deadbeef")
        assert base != experiment_key("fig05", extra={"variant": "b"})

    def test_fingerprints_are_stable_hex_digests(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64
        assert len(dataset_fingerprint()) == 64

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = experiment_key("concepts", scale=0.05)
        (tmp_path / f"{key}.json").write_text("{not json")
        assert cache.load(key) is None
        (tmp_path / f"{key}.json").write_text(json.dumps({"format": 99}))
        assert cache.load(key) is None
        assert cache.misses == 2

    def test_malformed_key_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(CacheError):
            cache.load("../escape")
        with pytest.raises(CacheError):
            cache.load("UPPER")

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_experiment("concepts", scale=0.05, seed=5)
        cache.store(experiment_key("concepts", scale=0.05, seed=5), result)
        assert cache.clear() == 1
        assert len(cache) == 0


class TestRunExperiments:
    IDS = ["concepts", "table02"]
    SCALE = 0.05

    def test_rejects_unknown_ids(self):
        with pytest.raises(ExperimentError):
            run_experiments(["nope"])

    def test_parallel_matches_serial_byte_for_byte(self):
        serial = run_experiments(self.IDS, scale=self.SCALE, workers=1)
        parallel = run_experiments(self.IDS, scale=self.SCALE, workers=2)
        assert [r.experiment_id for r in parallel] == self.IDS
        for left, right in zip(serial, parallel):
            assert not left.cached and not right.cached
            assert left.result.render() == right.result.render()

    def test_cache_hits_on_second_run_and_preserves_output(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_experiments(self.IDS, scale=self.SCALE, cache=cache)
        second = run_experiments(self.IDS, scale=self.SCALE, cache=cache)
        assert all(not r.cached for r in first)
        assert all(r.cached for r in second)
        assert all(r.duration_s == 0.0 for r in second)
        for left, right in zip(first, second):
            assert left.result.render() == right.result.render()
        # Different scale is a different key: both experiments miss.
        third = run_experiments(self.IDS, scale=0.04, cache=cache)
        assert all(not r.cached for r in third)


class TestSweepEquivalence:
    def test_parallel_sweep_equals_serial(self):
        dataset = generate_synthetic(4_000, dt=_DT, delay=_DELAY, seed=3)
        kwargs = dict(
            memory_budget=256,
            sstable_size=256,
            n_seq_values=[64, 128],
        )
        serial = sweep_wa_vs_nseq(dataset, _DELAY, _DT, **kwargs)
        via_runner = sweep_wa_vs_nseq(
            dataset, _DELAY, _DT, workers=2, **kwargs
        )
        direct = sweep_wa_vs_nseq_parallel(
            dataset, _DELAY, _DT, workers=2, **kwargs
        )
        for other in (via_runner, direct):
            np.testing.assert_array_equal(other.n_seq, serial.n_seq)
            np.testing.assert_array_equal(other.measured, serial.measured)
            np.testing.assert_array_equal(other.modelled, serial.modelled)
            assert other.measured_conventional == serial.measured_conventional
            assert other.modelled_conventional == serial.modelled_conventional


class TestCrashMatrixEquivalence:
    def test_parallel_matrix_equals_serial(self):
        kwargs = dict(engines=["pi_s"], seeds=1, n_points=1_500)
        serial = run_crash_test(**kwargs)
        parallel = run_crash_test(workers=2, **kwargs)
        assert serial.ok and parallel.ok
        assert [r.describe() for r in parallel.results] == [
            r.describe() for r in serial.results
        ]
