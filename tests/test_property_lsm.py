"""Property-based tests: LSM engine invariants under arbitrary inputs.

Whatever the arrival sequence, every engine must preserve data exactly
once, keep its runs sorted and non-overlapping, and report WA >= 1 with
every point written at least once.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    ConventionalEngine,
    IoTDBStyleEngine,
    LsmConfig,
    MultiLevelEngine,
    SeparationEngine,
)

# Arrival streams: unique generation times in arbitrary arrival order.
# (Definition 1: t_g "is unique and identifies a specific data point".)
arrival_streams = st.lists(
    st.floats(
        min_value=-1e6,
        max_value=1e6,
        allow_nan=False,
        allow_infinity=False,
    ),
    min_size=1,
    max_size=300,
    unique=True,
)

small_configs = st.builds(
    LsmConfig,
    memory_budget=st.integers(min_value=2, max_value=32),
    sstable_size=st.integers(min_value=1, max_value=32),
)


def _check_common_invariants(engine, tg_list):
    snapshot = engine.snapshot()
    # No loss, no duplication.
    assert snapshot.total_points == len(tg_list)
    ids = np.concatenate(
        [t.ids for t in snapshot.tables]
        + [np.empty(0, dtype=np.int64)]
    )
    assert np.unique(ids).size == ids.size
    # WA well-formed: every point written at least once, ratio >= 1.
    assert engine.write_amplification >= 1.0 - 1e-12
    counts = engine.stats.write_counts
    assert np.all(counts[: len(tg_list)] >= 1)
    # Tables internally sorted.
    for table in snapshot.tables:
        assert np.all(np.diff(table.tg) >= 0)


@settings(max_examples=60, deadline=None)
@given(tg=arrival_streams, config=small_configs)
def test_conventional_engine_invariants(tg, config):
    engine = ConventionalEngine(config)
    engine.ingest(np.asarray(tg, dtype=np.float64))
    engine.flush_all()
    engine.run.check_invariants()
    _check_common_invariants(engine, tg)
    # The run is one globally sorted sequence.
    all_tg = np.concatenate(
        [t.tg for t in engine.run.tables] + [np.empty(0)]
    )
    assert np.all(np.diff(all_tg) > 0)


@settings(max_examples=60, deadline=None)
@given(
    tg=arrival_streams,
    budget=st.integers(min_value=3, max_value=32),
    seq_fraction=st.floats(min_value=0.1, max_value=0.9),
)
def test_separation_engine_invariants(tg, budget, seq_fraction):
    seq_capacity = min(max(int(budget * seq_fraction), 1), budget - 1)
    config = LsmConfig(
        memory_budget=budget, sstable_size=budget, seq_capacity=seq_capacity
    )
    engine = SeparationEngine(config)
    engine.ingest(np.asarray(tg, dtype=np.float64))
    engine.flush_all()
    engine.run.check_invariants()
    _check_common_invariants(engine, tg)


@settings(max_examples=30, deadline=None)
@given(tg=arrival_streams, config=small_configs)
def test_multilevel_engine_invariants(tg, config):
    engine = MultiLevelEngine(config, size_ratio=2, max_levels=4)
    engine.ingest(np.asarray(tg, dtype=np.float64))
    engine.flush_all()
    for level in engine.levels:
        level.check_invariants()
    _check_common_invariants(engine, tg)


@settings(max_examples=30, deadline=None)
@given(
    tg=arrival_streams,
    policy=st.sampled_from(["conventional", "separation"]),
    limit=st.integers(min_value=1, max_value=8),
)
def test_iotdb_engine_invariants(tg, policy, limit):
    engine = IoTDBStyleEngine(
        LsmConfig(memory_budget=8, sstable_size=8),
        policy=policy,
        l1_file_limit=limit,
    )
    engine.ingest(np.asarray(tg, dtype=np.float64))
    engine.flush_all()
    engine.l2.check_invariants()
    _check_common_invariants(engine, tg)


@settings(max_examples=40, deadline=None)
@given(
    tg=arrival_streams,
    chunk=st.integers(min_value=1, max_value=50),
)
def test_chunked_ingest_equivalent_to_bulk(tg, chunk):
    """Slicing the arrival stream differently must not change anything."""
    data = np.asarray(tg, dtype=np.float64)
    config = LsmConfig(memory_budget=8, sstable_size=8)
    bulk = ConventionalEngine(config)
    bulk.ingest(data)
    bulk.flush_all()
    chunked = ConventionalEngine(config)
    for start in range(0, data.size, chunk):
        chunked.ingest(data[start : start + chunk])
    chunked.flush_all()
    assert bulk.stats.disk_writes == chunked.stats.disk_writes
    assert bulk.snapshot().disk_points == chunked.snapshot().disk_points


@settings(max_examples=40, deadline=None)
@given(tg=arrival_streams)
def test_sorted_input_is_write_optimal(tg):
    """Any engine fed pre-sorted data writes each point exactly once."""
    data = np.sort(np.asarray(tg, dtype=np.float64))
    for engine in (
        ConventionalEngine(LsmConfig(memory_budget=4, sstable_size=4)),
        SeparationEngine(LsmConfig(memory_budget=4, sstable_size=4)),
    ):
        engine.ingest(data)
        engine.flush_all()
        assert engine.write_amplification == pytest.approx(1.0)
