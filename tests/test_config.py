"""Tests for repro.config."""

import pytest

from repro import ConfigError, DiskModel, LsmConfig, ModelConfig


class TestLsmConfig:
    def test_defaults_match_paper(self):
        config = LsmConfig()
        assert config.memory_budget == 512
        assert config.sstable_size == 512
        assert config.seq_capacity is None

    def test_default_split_is_iotdb_half(self):
        config = LsmConfig(memory_budget=512)
        assert config.effective_seq_capacity == 256
        assert config.nonseq_capacity == 256

    def test_explicit_seq_capacity(self):
        config = LsmConfig(memory_budget=512, seq_capacity=100)
        assert config.effective_seq_capacity == 100
        assert config.nonseq_capacity == 412

    def test_with_seq_capacity_returns_new_config(self):
        config = LsmConfig(memory_budget=512)
        other = config.with_seq_capacity(10)
        assert other.seq_capacity == 10
        assert config.seq_capacity is None

    def test_odd_budget_split(self):
        config = LsmConfig(memory_budget=9)
        assert config.effective_seq_capacity == 4
        assert config.nonseq_capacity == 5

    @pytest.mark.parametrize("budget", [0, 1, -5])
    def test_rejects_tiny_budget(self, budget):
        with pytest.raises(ConfigError):
            LsmConfig(memory_budget=budget)

    def test_rejects_zero_sstable_size(self):
        with pytest.raises(ConfigError):
            LsmConfig(sstable_size=0)

    @pytest.mark.parametrize("seq", [0, 512, 600, -1])
    def test_rejects_out_of_range_seq_capacity(self, seq):
        with pytest.raises(ConfigError):
            LsmConfig(memory_budget=512, seq_capacity=seq)

    def test_frozen(self):
        config = LsmConfig()
        with pytest.raises(AttributeError):
            config.memory_budget = 10


class TestDiskModel:
    def test_read_cost_combines_seeks_and_scan(self):
        disk = DiskModel(seek_ms=10.0, read_point_ms=0.001)
        assert disk.read_cost_ms(files=2, points=1000) == pytest.approx(21.0)

    def test_write_cost(self):
        disk = DiskModel(write_point_ms=0.002)
        assert disk.write_cost_ms(500) == pytest.approx(1.0)

    def test_zero_cost_edges(self):
        disk = DiskModel()
        assert disk.read_cost_ms(0, 0) == 0.0
        assert disk.write_cost_ms(0) == 0.0

    def test_rejects_negative_costs(self):
        with pytest.raises(ConfigError):
            DiskModel(seek_ms=-1.0)


class TestModelConfig:
    def test_defaults_valid(self):
        ModelConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"quadrature_nodes": 4},
            {"tail_mass": 0.0},
            {"tail_mass": 0.7},
            {"term_tolerance": 0.0},
            {"dense_terms": 0},
            {"tail_grid_points": 4},
            {"h_grid_points": 10},
            {"log_cdf_floor": 1.0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            ModelConfig(**kwargs)
