"""Tests for the operator tools CLI (repro.tools)."""


from repro.tools import main


class TestDecide:
    def test_severe_disorder(self, capsys):
        code = main(
            ["decide", "--mu", "5", "--sigma", "2", "--dt", "50",
             "--budget", "128"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pi_s" in out
        assert "predicted WA" in out

    def test_mild_disorder_keeps_pi_c(self, capsys):
        code = main(
            ["decide", "--mu", "1", "--sigma", "0.3", "--dt", "50",
             "--budget", "128"]
        )
        assert code == 0
        assert "pi_c" in capsys.readouterr().out

    def test_exhaustive_flag(self, capsys):
        code = main(
            ["decide", "--mu", "4", "--sigma", "1.5", "--dt", "50",
             "--budget", "32", "--exhaustive"]
        )
        assert code == 0

    def test_json_output(self, capsys):
        import json

        code = main(
            ["decide", "--mu", "5", "--sigma", "2", "--dt", "50",
             "--budget", "128", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"] == "separation"
        assert payload["r_s_star"] < payload["r_c"]
        assert 1 <= payload["seq_capacity"] <= 127


class TestGenerateAndAnalyze:
    def test_round_trip(self, tmp_path, capsys):
        csv_path = tmp_path / "stream.csv"
        code = main(
            ["generate", str(csv_path), "--points", "20000", "--dt", "50",
             "--mu", "5", "--sigma", "2", "--seed", "3"]
        )
        assert code == 0
        assert csv_path.exists()
        out = capsys.readouterr().out
        assert "wrote 20000 points" in out

        code = main(["analyze", str(csv_path), "--budget", "128"])
        assert code == 0
        out = capsys.readouterr().out
        assert "profile:" in out
        assert "analyzed 20000 points" in out
        # Severe disorder -> the analyzer should recommend separation.
        assert "pi_s" in out

    def test_missing_file_fails_cleanly(self, capsys):
        code = main(["analyze", "/nonexistent/stream.csv"])
        assert code == 1
        assert "error" in capsys.readouterr().err
