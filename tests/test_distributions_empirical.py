"""Tests for EmpiricalDelay."""

import numpy as np
import pytest

from repro import DistributionError, EmpiricalDelay, LogNormalDelay


@pytest.fixture()
def lognormal_sample(rng):
    return LogNormalDelay(4.0, 1.0).sample(5_000, rng)


class TestEmpiricalDelay:
    def test_cdf_is_ecdf(self):
        dist = EmpiricalDelay(np.array([1.0, 2.0, 3.0, 4.0]))
        assert dist.cdf(0.5) == 0.0
        assert dist.cdf(1.0) == 0.25
        assert dist.cdf(2.5) == 0.5
        assert dist.cdf(4.0) == 1.0

    def test_tracks_the_source_distribution(self, lognormal_sample):
        dist = EmpiricalDelay(lognormal_sample)
        source = LogNormalDelay(4.0, 1.0)
        grid = np.asarray(source.quantile(np.array([0.1, 0.5, 0.9])))
        assert np.allclose(
            np.asarray(dist.cdf(grid)),
            np.asarray(source.cdf(grid)),
            atol=0.03,
        )

    def test_quantile_within_sample_range(self, lognormal_sample):
        dist = EmpiricalDelay(lognormal_sample)
        q = dist.quantile(np.array([0.0, 0.5, 1.0]))
        assert q[0] == lognormal_sample.min()
        assert q[-1] == lognormal_sample.max()

    def test_negative_observations_clipped(self):
        dist = EmpiricalDelay(np.array([-5.0, -1.0, 2.0, 3.0]))
        assert dist.quantile(0.0) == 0.0
        assert dist.support_upper() == 3.0

    def test_nan_observations_dropped(self):
        dist = EmpiricalDelay(np.array([1.0, np.nan, 2.0, np.inf, 3.0]))
        assert dist.sample_count == 3

    def test_sampling_is_bootstrap(self, lognormal_sample, rng):
        dist = EmpiricalDelay(lognormal_sample)
        draw = dist.sample(1_000, rng)
        assert set(np.unique(draw)).issubset(set(lognormal_sample))

    def test_pdf_zero_outside_range(self, lognormal_sample):
        dist = EmpiricalDelay(lognormal_sample)
        assert dist.pdf(lognormal_sample.max() + 1.0) == 0.0

    def test_pdf_integrates_to_one(self, lognormal_sample):
        dist = EmpiricalDelay(lognormal_sample, bins=64)
        grid = np.linspace(0.0, dist.support_upper(), 100_001)
        mass = float(np.trapezoid(np.asarray(dist.pdf(grid)), grid))
        assert mass == pytest.approx(1.0, abs=0.05)

    def test_moments_match_sample(self, lognormal_sample):
        dist = EmpiricalDelay(lognormal_sample)
        assert dist.mean() == pytest.approx(lognormal_sample.mean())
        assert dist.variance() == pytest.approx(lognormal_sample.var())

    def test_constant_delays_supported(self):
        # A perfectly regular channel produces identical delays; the
        # profile (and everything downstream) must still work.
        dist = EmpiricalDelay(np.full(50, 3.0))
        assert dist.cdf(2.9) == 0.0
        assert dist.cdf(3.0) == 1.0
        assert dist.quantile(0.5) == 3.0
        grid = np.linspace(0.0, 6.0, 1001)
        assert np.all(np.asarray(dist.pdf(grid)) >= 0.0)

    def test_denormal_span_supported(self):
        # Delays identical except denormal-scale noise (a hypothesis
        # stateful run found this crashing np.histogram).
        data = np.full(35, 1.0)
        data[0] = np.nextafter(1.0, 2.0)
        dist = EmpiricalDelay(data)
        assert dist.quantile(0.5) == pytest.approx(1.0)

    def test_constant_delays_feed_the_tuner(self):
        from repro import tune_separation_policy

        dist = EmpiricalDelay(np.full(100, 5.0))
        decision = tune_separation_policy(dist, 50.0, 64)
        assert decision.policy == "conventional"
        assert decision.r_c == pytest.approx(1.0)

    def test_rejects_tiny_samples(self):
        with pytest.raises(DistributionError):
            EmpiricalDelay(np.array([1.0]))

    def test_observations_returns_sorted_copy(self):
        dist = EmpiricalDelay(np.array([3.0, 1.0, 2.0]))
        obs = dist.observations
        assert list(obs) == [1.0, 2.0, 3.0]
        obs[0] = 99.0
        assert dist.quantile(0.0) == 1.0
