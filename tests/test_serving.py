"""Tests for the sharded serving tier and its memory arbiter.

The load-bearing property is *shard independence*: an N-shard
:class:`~repro.serving.ShardedDatabase` run must be bit-identical, shard
by shard (write amplification, per-point write counters, checkpoint
bytes, ``verify()``), to N standalone single-shard databases run over
the same routed partitions.  Everything the serving tier adds — routing,
fleet manifests, the online arbiter, parallel ingest, the fleet crash
matrix — is checked against that invariant here.
"""

import json
import os

import numpy as np
import pytest

from repro.core.allocation import MemoryArbiter
from repro.distributions import ExponentialDelay, LogNormalDelay, UniformDelay
from repro.errors import EngineError, RecoveryError, TelemetryError
from repro.faults.crashtest import FLEET_FAULT_KINDS, run_fleet_crash_case
from repro.lsm.database import TimeSeriesDatabase, manifest_filename
from repro.obs.sharding import render_shard_report
from repro.obs.sinks import RingBufferSink
from repro.obs.telemetry import Telemetry
from repro.parallel import ingest_fleet_parallel
from repro.serving import (
    FLEET_MANIFEST,
    ShardRouter,
    ShardedDatabase,
    shard_name,
)
from repro.workloads import generate_synthetic

#: Small buffers: a few thousand points exercise many flushes/merges.
_DB_KWARGS = dict(memory_budget_per_series=64, sstable_size=32)


def _datasets(names, n_points=1500, disordered=True, base_seed=11):
    delay = (
        ExponentialDelay(mean=40.0) if disordered else UniformDelay(0.0, 0.5)
    )
    return {
        name: generate_synthetic(
            n_points, dt=1.0, delay=delay, seed=base_seed + index, name=name
        )
        for index, name in enumerate(names)
    }


def _rounds(datasets, chunk=400, with_ta=False):
    """Multi-series ingest rounds, every series advancing in lock-step."""
    n_points = len(next(iter(datasets.values())).tg)
    rounds = []
    for pos in range(0, n_points, chunk):
        region = slice(pos, pos + chunk)
        rounds.append(
            [
                (name, ds.tg[region], ds.ta[region])
                if with_ta
                else (name, ds.tg[region])
                for name, ds in datasets.items()
            ]
        )
    return rounds


class TestShardRouter:
    def test_hash_routing_is_stable_across_instances(self):
        names = [f"series-{i}" for i in range(40)]
        a = ShardRouter(4)
        b = ShardRouter(4)
        assert [a.shard_of(n) for n in names] == [b.shard_of(n) for n in names]
        assert all(0 <= a.shard_of(n) < 4 for n in names)

    def test_hash_routing_spreads_series(self):
        router = ShardRouter(4)
        hit = {router.shard_of(f"series-{i:03d}") for i in range(64)}
        assert hit == {0, 1, 2, 3}

    def test_range_routing_uses_boundaries(self):
        router = ShardRouter(3, mode="range", boundaries=["g", "p"])
        assert router.shard_of("alpha") == 0
        assert router.shard_of("golf") == 1
        assert router.shard_of("zulu") == 2

    def test_split_batch_preserves_per_shard_order(self):
        router = ShardRouter(2)
        batch = [(f"s{i}", np.arange(3.0) + i) for i in range(8)]
        parts = router.split_batch(batch)
        for index, entries in parts.items():
            expected = [e for e in batch if router.shard_of(e[0]) == index]
            assert [e[0] for e in entries] == [e[0] for e in expected]

    def test_round_trips_through_dict(self):
        router = ShardRouter(3, mode="range", boundaries=["g", "p"])
        clone = ShardRouter.from_dict(router.as_dict())
        for name in ("alpha", "golf", "pike", "zulu"):
            assert clone.shard_of(name) == router.shard_of(name)

    def test_rejects_bad_inputs(self):
        with pytest.raises(EngineError):
            ShardRouter(0)
        with pytest.raises(EngineError):
            ShardRouter(2, mode="nope")
        with pytest.raises(EngineError):
            ShardRouter(3, mode="range", boundaries=["x"])
        with pytest.raises(EngineError):
            ShardRouter(3, mode="range", boundaries=["p", "g"])


class TestShardConformance:
    """The tier invariant, across three engine policy triples.

    ``pi_c`` runs every series conventional, ``pi_s`` pins every series
    to separation with a fixed split, and ``tuned`` lets the mid-run
    retune switch disordered series to separation — so the comparison
    covers the conventional triple, the separation triple and the
    tuned mix of both.
    """

    MODES = ("pi_c", "pi_s", "tuned")

    def _run_pair(self, tmp_path, mode):
        names = [f"series-{i:02d}" for i in range(5)]
        datasets = _datasets(names)
        rounds = _rounds(datasets, with_ta=(mode == "tuned"))
        router = ShardRouter(3)
        auto_tune = mode == "tuned"

        fleet = ShardedDatabase(
            router=router,
            auto_tune=auto_tune,
            durability_dir=str(tmp_path / "fleet"),
            **_DB_KWARGS,
        )
        solos = [
            TimeSeriesDatabase(
                auto_tune=auto_tune,
                durability_dir=str(tmp_path / "solo" / shard_name(index)),
                namespace=shard_name(index),
                **_DB_KWARGS,
            )
            for index in range(router.n_shards)
        ]
        if mode == "pi_s":
            for name in names:
                fleet.database_for(name).create_series(name, seq_capacity=16)
                solos[router.shard_of(name)].create_series(
                    name, seq_capacity=16
                )
        retune_at = len(rounds) // 2
        for rnd, batch in enumerate(rounds):
            fleet.ingest_batch(batch)
            # The solo runs replicate ingest_batch exactly: routed
            # slices, per-shard input order, one sync per shard slice.
            parts = router.split_batch(batch)
            for index in sorted(parts):
                for entry in parts[index]:
                    solos[index].write(entry[0], entry[1], *entry[2:])
                solos[index].sync()
            if mode == "tuned" and rnd + 1 == retune_at:
                fleet.retune(min_observations=512)
                for solo in solos:
                    solo.retune(min_observations=512)
        return fleet, solos, names, router

    @pytest.mark.parametrize("mode", MODES)
    def test_fleet_matches_standalone_shards(self, tmp_path, mode):
        fleet, solos, names, router = self._run_pair(tmp_path, mode)
        assert len(fleet) == len(names)
        for name in names:
            sharded = fleet.database_for(name).series(name).engine
            solo = solos[router.shard_of(name)].series(name).engine
            sharded.verify()
            solo.verify()
            assert type(sharded) is type(solo)
            assert sharded.ingested_points == solo.ingested_points
            assert sharded.stats.disk_writes == solo.stats.disk_writes
            assert np.array_equal(
                sharded.stats.write_counts, solo.stats.write_counts
            )

    @pytest.mark.parametrize("mode", MODES)
    def test_checkpoint_bytes_identical(self, tmp_path, mode):
        fleet, solos, _, router = self._run_pair(tmp_path, mode)
        fleet.checkpoint_all()
        for solo in solos:
            solo.checkpoint_all()
        for index in range(router.n_shards):
            shard_dir = tmp_path / "fleet" / shard_name(index)
            solo_dir = tmp_path / "solo" / shard_name(index)
            shard_files = sorted(os.listdir(shard_dir))
            assert shard_files == sorted(os.listdir(solo_dir))
            for file_name in shard_files:
                assert (shard_dir / file_name).read_bytes() == (
                    solo_dir / file_name
                ).read_bytes(), f"{shard_name(index)}/{file_name} diverged"


class TestNamespaceCollision:
    """Regression: databases sharing one directory must not collide."""

    def test_namespaced_databases_share_a_directory(self, tmp_path):
        shared = str(tmp_path)
        names = ["sensor", "sensor.2"]
        first = TimeSeriesDatabase(
            durability_dir=shared, namespace="shard-00", **_DB_KWARGS
        )
        second = TimeSeriesDatabase(
            durability_dir=shared, namespace="shard-01", **_DB_KWARGS
        )
        data = _datasets(names, n_points=600)
        for name in names:
            first.write(name, data[name].tg)
            second.write(name, data[name].tg[:300])
        first.sync()
        second.sync()
        first.checkpoint_all()
        second.checkpoint_all()
        # Same series names, same directory — every file still distinct.
        assert manifest_filename("shard-00") != manifest_filename("shard-01")
        assert len(os.listdir(shared)) == 2 * (2 * len(names) + 1)
        for namespace, points in (("shard-00", 600), ("shard-01", 300)):
            recovered = TimeSeriesDatabase.recover(
                shared, namespace=namespace
            )
            assert sorted(recovered.series_names()) == sorted(names)
            for name in names:
                engine = recovered.series(name).engine
                engine.verify()
                assert engine.ingested_points == points

    def test_recover_rejects_namespace_mismatch(self, tmp_path):
        db = TimeSeriesDatabase(
            durability_dir=str(tmp_path), namespace="shard-00", **_DB_KWARGS
        )
        db.write("s", np.arange(64.0))
        db.checkpoint_all()
        with pytest.raises(RecoveryError):
            TimeSeriesDatabase.recover(str(tmp_path))

    def test_empty_namespace_keeps_historical_layout(self, tmp_path):
        db = TimeSeriesDatabase(durability_dir=str(tmp_path), **_DB_KWARGS)
        db.write("s", np.arange(64.0))
        db.checkpoint_all()
        assert manifest_filename() == "manifest.json"
        assert (tmp_path / "manifest.json").exists()
        recovered = TimeSeriesDatabase.recover(str(tmp_path))
        assert recovered.series("s").engine.ingested_points == 64


class TestShardLabels:
    def test_per_shard_counters_stay_distinguishable(self, tmp_path):
        telemetry = Telemetry(sinks=[RingBufferSink()])
        fleet = ShardedDatabase(
            n_shards=2, telemetry=telemetry, **_DB_KWARGS
        )
        fleet.ingest_batch(
            [("left", np.arange(100.0)), ("night", np.arange(50.0))]
        )
        values = telemetry.registry.shard_values("db.write.points")
        assert set(values) == {shard_name(0), shard_name(1)}
        assert sum(values.values()) == 150
        assert telemetry.registry.counter("fleet.ingest.points").value == 150

    def test_labels_survive_a_registry_merge(self):
        telemetry = Telemetry(sinks=[RingBufferSink()])
        for shard, amount in ((shard_name(0), 7), (shard_name(1), 5)):
            telemetry.registry.counter("db.write.points", shard=shard).inc(
                amount
            )
        parent = Telemetry(sinks=[RingBufferSink()])
        parent.registry.merge_snapshot(telemetry.registry.as_dict())
        merged = parent.registry.shard_values("db.write.points")
        assert merged == {shard_name(0): 7, shard_name(1): 5}

    def test_label_rejects_metachars(self):
        telemetry = Telemetry(sinks=[RingBufferSink()])
        with pytest.raises(TelemetryError):
            telemetry.registry.counter("db.write.points", shard='ba"d')


class TestFleetCrash:
    """Killing one shard mid-group-commit leaves the rest untouched."""

    @pytest.mark.parametrize("fault", FLEET_FAULT_KINDS)
    def test_victim_recovers_exactly_survivors_untouched(
        self, tmp_path, fault
    ):
        result = run_fleet_crash_case(fault, seed=0, workdir=str(tmp_path))
        assert result.crashed, result.describe()
        assert result.victim_series > 0
        assert result.survivors_untouched, result.describe()
        assert result.victim_wa_match, result.describe()
        assert result.ok, result.describe()


class TestFleetRecovery:
    def test_fleet_round_trips_through_recovery(self, tmp_path):
        names = [f"series-{i:02d}" for i in range(4)]
        datasets = _datasets(names, n_points=800)
        fleet = ShardedDatabase(
            n_shards=3, durability_dir=str(tmp_path), **_DB_KWARGS
        )
        for batch in _rounds(datasets, chunk=300):
            fleet.ingest_batch(batch)
        fleet.checkpoint_all()
        expected = {
            name: fleet.database_for(name).series(name).engine.ingested_points
            for name in names
        }
        revived = ShardedDatabase.recover(str(tmp_path))
        assert revived.n_shards == 3
        assert sorted(revived.series_names()) == sorted(names)
        for name in names:
            engine = revived.database_for(name).series(name).engine
            engine.verify()
            assert engine.ingested_points == expected[name]

    def test_recover_without_manifest_fails(self, tmp_path):
        with pytest.raises(RecoveryError):
            ShardedDatabase.recover(str(tmp_path))


class TestParallelIngest:
    def test_parallel_fleet_matches_serial(self, tmp_path):
        names = [f"series-{i:02d}" for i in range(6)]
        datasets = _datasets(names, n_points=900)
        batch = [(name, datasets[name].tg) for name in names]

        serial = ShardedDatabase(
            n_shards=3,
            auto_tune=False,
            durability_dir=str(tmp_path / "serial"),
            **_DB_KWARGS,
        )
        serial.ingest_batch(batch)
        serial.checkpoint_all()

        parallel = ingest_fleet_parallel(
            str(tmp_path / "parallel"),
            batch,
            n_shards=3,
            workers=2,
            auto_tune=False,
            memory_budget_per_series=_DB_KWARGS["memory_budget_per_series"],
            sstable_size=_DB_KWARGS["sstable_size"],
        )
        assert sorted(parallel.series_names()) == sorted(names)
        for name in names:
            fanned = parallel.database_for(name).series(name).engine
            reference = serial.database_for(name).series(name).engine
            fanned.verify()
            assert fanned.ingested_points == reference.ingested_points
            assert fanned.stats.disk_writes == reference.stats.disk_writes
            assert np.array_equal(
                fanned.stats.write_counts, reference.stats.write_counts
            )


class TestMemoryArbiter:
    def _skewed_fleet(self, tmp_path=None, arbiter=None):
        telemetry = Telemetry(sinks=[RingBufferSink()])
        fleet = ShardedDatabase(
            n_shards=2,
            memory_budget_per_series=64,
            sstable_size=32,
            auto_tune=True,
            telemetry=telemetry,
            durability_dir=str(tmp_path) if tmp_path is not None else None,
            arbiter=arbiter,
        )
        noisy = _datasets(
            ["noisy-0", "noisy-1"], n_points=2000, base_seed=3
        )
        clean = _datasets(
            ["clean-0", "clean-1"],
            n_points=2000,
            disordered=False,
            base_seed=23,
        )
        datasets = {**noisy, **clean}
        return fleet, datasets

    def test_requires_auto_tune(self):
        with pytest.raises(EngineError):
            ShardedDatabase(
                n_shards=2,
                auto_tune=False,
                arbiter=MemoryArbiter(total_budget=256),
            )

    def test_rejects_fault_plans_outside_fleet(self):
        with pytest.raises(EngineError):
            ShardedDatabase(n_shards=2, shard_fault_plans={5: object()})

    def test_rebalance_moves_memory_to_disordered_series(self, tmp_path):
        arbiter = MemoryArbiter(
            total_budget=4 * 64,
            candidate_budgets=(32, 64, 128),
            decision_interval=4000,
            min_observations=512,
        )
        fleet, datasets = self._skewed_fleet(tmp_path, arbiter)
        for batch in _rounds(datasets, chunk=500, with_ta=True):
            fleet.ingest_batch(batch)
        assert fleet.last_rebalance is not None
        budgets = {
            name: fleet.database_for(name).series(name).config.memory_budget
            for name in datasets
        }
        assert sum(budgets.values()) <= arbiter.total_budget
        for noisy in ("noisy-0", "noisy-1"):
            for clean in ("clean-0", "clean-1"):
                assert budgets[noisy] > budgets[clean], budgets
        # Resizes preserved exact WA accounting: every engine verifies
        # and still holds its full ingest history.
        for name in datasets:
            engine = fleet.database_for(name).series(name).engine
            engine.verify()
            assert engine.ingested_points == 2000
        assert fleet.telemetry.registry.counter("arbiter.decisions").value > 0

    def test_decision_persists_through_fleet_manifest(self, tmp_path):
        arbiter = MemoryArbiter(
            total_budget=4 * 64,
            candidate_budgets=(32, 64, 128),
            decision_interval=4000,
            min_observations=512,
        )
        fleet, datasets = self._skewed_fleet(tmp_path, arbiter)
        for batch in _rounds(datasets, chunk=500, with_ta=True):
            fleet.ingest_batch(batch)
        fleet.checkpoint_all()
        with open(tmp_path / FLEET_MANIFEST, encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["last_rebalance"]["tick"] >= 1
        revived = ShardedDatabase.recover(str(tmp_path))
        assert revived.last_rebalance == fleet.last_rebalance

    def test_shard_report_renders(self, tmp_path):
        arbiter = MemoryArbiter(
            total_budget=4 * 64,
            candidate_budgets=(32, 64, 128),
            decision_interval=4000,
            min_observations=512,
        )
        fleet, datasets = self._skewed_fleet(tmp_path, arbiter)
        for batch in _rounds(datasets, chunk=500, with_ta=True):
            fleet.ingest_batch(batch)
        report = render_shard_report(fleet, source="test-fleet")
        assert "shard-00" in report and "shard-01" in report
        assert "last rebalance: tick" in report
        assert "test-fleet" in report

    def test_backpressure_rolls_up_worst_state(self):
        fleet, _ = self._skewed_fleet()
        fleet.write("s", np.arange(64.0))
        assert fleet.backpressure_state() == "healthy"
