"""Failure-injection and robustness tests across the stack."""

import numpy as np
import pytest

from repro import (
    AdaptiveEngine,
    ConventionalEngine,
    DelayAnalyzer,
    EngineError,
    IoTDBStyleEngine,
    JsonlFileSink,
    LogNormalDelay,
    LsmConfig,
    MultiLevelEngine,
    SeparationEngine,
    Telemetry,
    TieredEngine,
)
from repro.errors import EngineClosedError, ModelError
from repro.faults.crashtest import run_crash_case
from repro.lsm import CompactionEvent, WriteStats
from repro.workloads import generate_synthetic


@pytest.mark.parametrize(
    "factory",
    [
        lambda: ConventionalEngine(LsmConfig(8, 8)),
        lambda: SeparationEngine(LsmConfig(8, 8)),
        lambda: IoTDBStyleEngine(LsmConfig(8, 8)),
        lambda: MultiLevelEngine(LsmConfig(8, 8)),
        lambda: TieredEngine(LsmConfig(8, 8)),
    ],
    ids=["conventional", "separation", "iotdb", "multilevel", "tiered"],
)
class TestNonFiniteInputsRejected:
    def test_nan_rejected(self, factory):
        engine = factory()
        with pytest.raises(EngineError):
            engine.ingest(np.array([1.0, np.nan, 2.0]))

    def test_inf_rejected(self, factory):
        engine = factory()
        with pytest.raises(EngineError):
            engine.ingest(np.array([np.inf]))

    def test_state_clean_after_rejection(self, factory):
        engine = factory()
        with pytest.raises(EngineError):
            engine.ingest(np.array([np.nan]))
        # A rejected batch must not leave partial state behind: a good
        # batch afterwards works and accounting stays exact.
        engine.ingest(np.arange(16, dtype=np.float64))
        engine.flush_all()
        assert engine.snapshot().total_points == 16


class TestEngineMisuse:
    def test_double_close_is_idempotent(self):
        engine = ConventionalEngine(LsmConfig(8, 8))
        engine.ingest(np.arange(4, dtype=np.float64))
        engine.close()
        engine.close()
        assert engine.snapshot().disk_points == 4

    def test_flush_all_on_empty_engine(self):
        engine = SeparationEngine(LsmConfig(8, 8))
        engine.flush_all()
        assert engine.snapshot().total_points == 0

    def test_duplicate_generation_times_survive(self):
        # Definition 1 says t_g is unique, but the engines should not
        # corrupt state if a client violates that.
        engine = ConventionalEngine(LsmConfig(4, 4))
        engine.ingest(np.array([5.0, 5.0, 5.0, 5.0, 5.0]))
        engine.flush_all()
        assert engine.snapshot().total_points == 5


class TestAnalyzerLongHorizon:
    def test_sketch_tracks_full_history(self):
        dataset = generate_synthetic(
            20_000, dt=50, delay=LogNormalDelay(4.0, 1.0), seed=1
        )
        analyzer = DelayAnalyzer(
            memory_budget=256, window=1024, track_long_horizon=True
        )
        analyzer.observe(dataset.tg, dataset.ta)
        assert analyzer.long_horizon.count == 20_000
        quantiles = analyzer.long_horizon_quantiles([0.5, 0.9])
        reference = np.quantile(dataset.delays, [0.5, 0.9])
        assert np.allclose(quantiles, reference, rtol=0.1)

    def test_disabled_by_default(self):
        analyzer = DelayAnalyzer(memory_budget=256)
        assert analyzer.long_horizon is None
        with pytest.raises(ModelError):
            analyzer.long_horizon_quantiles([0.5])


class TestSeedRobustness:
    """The headline reproduction claims hold across seeds."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_severe_disorder_always_prefers_separation(self, seed):
        dataset = generate_synthetic(
            40_000, dt=50, delay=LogNormalDelay(5.0, 2.0), seed=seed
        )
        conventional = ConventionalEngine(LsmConfig(512, 512))
        conventional.ingest(dataset.tg)
        conventional.flush_all()
        separation = SeparationEngine(LsmConfig(512, 512, seq_capacity=256))
        separation.ingest(dataset.tg)
        separation.flush_all()
        assert (
            separation.write_amplification
            < conventional.write_amplification
        )

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_mild_disorder_keeps_conventional_competitive(self, seed):
        dataset = generate_synthetic(
            40_000, dt=50, delay=LogNormalDelay(4.0, 1.5), seed=seed
        )
        conventional = ConventionalEngine(LsmConfig(512, 512))
        conventional.ingest(dataset.tg)
        conventional.flush_all()
        separation = SeparationEngine(LsmConfig(512, 512, seq_capacity=256))
        separation.ingest(dataset.tg)
        separation.flush_all()
        assert (
            conventional.write_amplification
            <= separation.write_amplification * 1.05
        )


class TestClosedEngine:
    """flush_all on a closed engine must raise, never silently no-op."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ConventionalEngine(LsmConfig(8, 8)),
            lambda: SeparationEngine(LsmConfig(8, 8)),
            lambda: AdaptiveEngine(LsmConfig(8, 8)),
            lambda: IoTDBStyleEngine(LsmConfig(8, 8)),
            lambda: MultiLevelEngine(LsmConfig(8, 8)),
            lambda: TieredEngine(LsmConfig(8, 8)),
        ],
        ids=[
            "conventional", "separation", "adaptive",
            "iotdb", "multilevel", "tiered",
        ],
    )
    def test_flush_all_after_close_raises(self, factory):
        engine = factory()
        tg = np.arange(4, dtype=np.float64)
        if isinstance(engine, AdaptiveEngine):
            engine.ingest(tg, tg + 1.0)
        else:
            engine.ingest(tg)
        engine.close()
        with pytest.raises(EngineClosedError):
            engine.flush_all()
        with pytest.raises(EngineClosedError):
            if isinstance(engine, AdaptiveEngine):
                engine.ingest(np.array([9.0]), np.array([10.0]))
            else:
                engine.ingest(np.array([9.0]))


class TestEventValidation:
    """record_event rejects malformed compaction events at the door."""

    def test_bad_kind_rejected(self):
        stats = WriteStats()
        with pytest.raises(EngineError, match="kind"):
            stats.record_event(
                CompactionEvent(
                    kind="defrag", arrival_index=0, new_points=1,
                    rewritten_points=0, tables_rewritten=0, tables_written=1,
                )
            )

    @pytest.mark.parametrize(
        "field", [
            "arrival_index", "new_points", "rewritten_points",
            "tables_rewritten", "tables_written",
        ],
    )
    def test_negative_counts_rejected(self, field):
        stats = WriteStats()
        kwargs = dict(
            kind="flush", arrival_index=0, new_points=1,
            rewritten_points=0, tables_rewritten=0, tables_written=1,
        )
        kwargs[field] = -1
        with pytest.raises(EngineError, match="non-negative"):
            stats.record_event(CompactionEvent(**kwargs))

    def test_arrival_index_must_be_monotone(self):
        stats = WriteStats()
        stats.record_event(
            CompactionEvent(
                kind="flush", arrival_index=100, new_points=10,
                rewritten_points=0, tables_rewritten=0, tables_written=1,
            )
        )
        with pytest.raises(EngineError, match="monotone"):
            stats.record_event(
                CompactionEvent(
                    kind="merge", arrival_index=50, new_points=5,
                    rewritten_points=0, tables_rewritten=0, tables_written=1,
                )
            )


class TestSinkHardening:
    """Telemetry must degrade, not take down ingest, when its file dies."""

    def test_write_failure_disables_sink(self, tmp_path):
        target = tmp_path / "gone" / "trace.jsonl"  # parent doesn't exist
        sink = JsonlFileSink(str(target))
        sink.write({"type": "x"})  # must not raise
        assert sink.disabled and sink.errors == 1 and sink.written == 0
        sink.write({"type": "y"})  # silently dropped
        assert sink.errors == 2

    def test_engine_survives_sink_failure(self, tmp_path):
        target = tmp_path / "missing-dir" / "trace.jsonl"
        sink = JsonlFileSink(str(target))
        engine = ConventionalEngine(
            LsmConfig(16, 16), telemetry=Telemetry(sinks=[sink])
        )
        dataset = generate_synthetic(
            2_000, dt=50, delay=LogNormalDelay(4.0, 1.0), seed=7
        )
        engine.ingest(dataset.tg)
        engine.flush_all()
        engine.verify()
        assert sink.disabled

    def test_healthy_sink_still_writes(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        sink = JsonlFileSink(str(target))
        sink.write({"type": "x"})
        sink.close()
        assert not sink.disabled and sink.written == 1
        assert target.read_text().strip() == '{"type":"x"}'


class TestCrashRecoveryProperty:
    """Property over seeds: crash -> recover => durable prefix intact."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_torn_wal_recovery_across_seeds(self, seed, tmp_path):
        result = run_crash_case("pi_c", "torn_wal", seed, str(tmp_path))
        assert result.ok, result.describe()
        assert result.verified and result.wa_match

    @pytest.mark.parametrize("engine", ["pi_s", "multilevel"])
    def test_crash_at_merge_recovery(self, engine, tmp_path):
        result = run_crash_case(engine, "crash_merge", 0, str(tmp_path))
        assert result.ok, result.describe()
