"""Failure-injection and robustness tests across the stack."""

import numpy as np
import pytest

from repro import (
    ConventionalEngine,
    DelayAnalyzer,
    EngineError,
    IoTDBStyleEngine,
    LogNormalDelay,
    LsmConfig,
    MultiLevelEngine,
    SeparationEngine,
    TieredEngine,
)
from repro.errors import ModelError
from repro.workloads import generate_synthetic


@pytest.mark.parametrize(
    "factory",
    [
        lambda: ConventionalEngine(LsmConfig(8, 8)),
        lambda: SeparationEngine(LsmConfig(8, 8)),
        lambda: IoTDBStyleEngine(LsmConfig(8, 8)),
        lambda: MultiLevelEngine(LsmConfig(8, 8)),
        lambda: TieredEngine(LsmConfig(8, 8)),
    ],
    ids=["conventional", "separation", "iotdb", "multilevel", "tiered"],
)
class TestNonFiniteInputsRejected:
    def test_nan_rejected(self, factory):
        engine = factory()
        with pytest.raises(EngineError):
            engine.ingest(np.array([1.0, np.nan, 2.0]))

    def test_inf_rejected(self, factory):
        engine = factory()
        with pytest.raises(EngineError):
            engine.ingest(np.array([np.inf]))

    def test_state_clean_after_rejection(self, factory):
        engine = factory()
        with pytest.raises(EngineError):
            engine.ingest(np.array([np.nan]))
        # A rejected batch must not leave partial state behind: a good
        # batch afterwards works and accounting stays exact.
        engine.ingest(np.arange(16, dtype=np.float64))
        engine.flush_all()
        assert engine.snapshot().total_points == 16


class TestEngineMisuse:
    def test_double_close_is_idempotent(self):
        engine = ConventionalEngine(LsmConfig(8, 8))
        engine.ingest(np.arange(4, dtype=np.float64))
        engine.close()
        engine.close()
        assert engine.snapshot().disk_points == 4

    def test_flush_all_on_empty_engine(self):
        engine = SeparationEngine(LsmConfig(8, 8))
        engine.flush_all()
        assert engine.snapshot().total_points == 0

    def test_duplicate_generation_times_survive(self):
        # Definition 1 says t_g is unique, but the engines should not
        # corrupt state if a client violates that.
        engine = ConventionalEngine(LsmConfig(4, 4))
        engine.ingest(np.array([5.0, 5.0, 5.0, 5.0, 5.0]))
        engine.flush_all()
        assert engine.snapshot().total_points == 5


class TestAnalyzerLongHorizon:
    def test_sketch_tracks_full_history(self):
        dataset = generate_synthetic(
            20_000, dt=50, delay=LogNormalDelay(4.0, 1.0), seed=1
        )
        analyzer = DelayAnalyzer(
            memory_budget=256, window=1024, track_long_horizon=True
        )
        analyzer.observe(dataset.tg, dataset.ta)
        assert analyzer.long_horizon.count == 20_000
        quantiles = analyzer.long_horizon_quantiles([0.5, 0.9])
        reference = np.quantile(dataset.delays, [0.5, 0.9])
        assert np.allclose(quantiles, reference, rtol=0.1)

    def test_disabled_by_default(self):
        analyzer = DelayAnalyzer(memory_budget=256)
        assert analyzer.long_horizon is None
        with pytest.raises(ModelError):
            analyzer.long_horizon_quantiles([0.5])


class TestSeedRobustness:
    """The headline reproduction claims hold across seeds."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_severe_disorder_always_prefers_separation(self, seed):
        dataset = generate_synthetic(
            40_000, dt=50, delay=LogNormalDelay(5.0, 2.0), seed=seed
        )
        conventional = ConventionalEngine(LsmConfig(512, 512))
        conventional.ingest(dataset.tg)
        conventional.flush_all()
        separation = SeparationEngine(LsmConfig(512, 512, seq_capacity=256))
        separation.ingest(dataset.tg)
        separation.flush_all()
        assert (
            separation.write_amplification
            < conventional.write_amplification
        )

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_mild_disorder_keeps_conventional_competitive(self, seed):
        dataset = generate_synthetic(
            40_000, dt=50, delay=LogNormalDelay(4.0, 1.5), seed=seed
        )
        conventional = ConventionalEngine(LsmConfig(512, 512))
        conventional.ingest(dataset.tg)
        conventional.flush_all()
        separation = SeparationEngine(LsmConfig(512, 512, seq_capacity=256))
        separation.ingest(dataset.tg)
        separation.flush_all()
        assert (
            conventional.write_amplification
            <= separation.write_amplification * 1.05
        )
