"""Tests for the WA models r_c (Eq. 3) and r_s (Eqs. 4/5)."""

import math

import pytest

from repro import (
    ConstantDelay,
    LogNormalDelay,
    UniformDelay,
    ZetaModel,
    predict_wa_conventional,
    predict_wa_separation,
    separation_breakdown,
)
from repro.core import InOrderCurve
from repro.core.wa_conventional import GRANULARITY_KAPPA
from repro.errors import ModelError


class TestConventionalModel:
    def test_at_least_one(self):
        assert predict_wa_conventional(LogNormalDelay(4.0, 1.5), 50.0, 512) >= 1.0

    def test_ordered_workload_is_one(self):
        assert predict_wa_conventional(
            UniformDelay(0.0, 30.0), 50.0, 512
        ) == pytest.approx(1.0)

    def test_equals_zeta_over_n_plus_one(self):
        dist = LogNormalDelay(5.0, 2.0)
        model = ZetaModel(dist, 50.0)
        expected = model.zeta(512) / 512 + 1.0
        assert predict_wa_conventional(
            dist, 50.0, 512, zeta_model=model
        ) == pytest.approx(expected)

    def test_granularity_correction_adds_padding(self):
        dist = LogNormalDelay(5.0, 2.0)
        base = predict_wa_conventional(dist, 50.0, 512)
        corrected = predict_wa_conventional(dist, 50.0, 512, sstable_size=512)
        assert corrected == pytest.approx(base + GRANULARITY_KAPPA)

    def test_no_correction_without_rewrites(self):
        # Ordered workload: zeta ~ 0, correction must not apply.
        dist = ConstantDelay(1.0)
        corrected = predict_wa_conventional(dist, 50.0, 512, sstable_size=512)
        assert corrected == pytest.approx(1.0)

    def test_rejects_bad_budget(self):
        with pytest.raises(ModelError):
            predict_wa_conventional(LogNormalDelay(4, 1.5), 50.0, 0)


class TestSeparationModel:
    def test_breakdown_identities(self):
        dist = LogNormalDelay(5.0, 2.0)
        breakdown = separation_breakdown(dist, 50.0, 512, 256)
        assert breakdown.n_seq == 256
        assert breakdown.n_nonseq == 256
        assert breakdown.g > 0
        # Eq. 4.
        expected_arrive = 256 * 256 / breakdown.g + 256
        assert breakdown.n_arrive == pytest.approx(expected_arrive)
        # N_cur = N_arrive - n_nonseq - n'_seq.
        assert breakdown.n_cur == pytest.approx(
            breakdown.n_arrive - breakdown.n_nonseq - breakdown.n_seq_last
        )
        # Consistent variant = (N_cur + N_bef + N_arrive) / N_arrive.
        assert breakdown.wa_consistent == pytest.approx(
            (breakdown.n_cur + breakdown.n_bef + breakdown.n_arrive)
            / breakdown.n_arrive
        )
        # Printed Eq. 5 final line.
        assert breakdown.wa_eq5 == pytest.approx(
            breakdown.n_bef / breakdown.n_arrive
            + 1.0
            + (breakdown.n_nonseq + breakdown.n_seq_last) / breakdown.n_arrive
        )

    def test_last_flush_size_bounds(self):
        dist = LogNormalDelay(5.0, 2.0)
        for n_seq in (32, 128, 256, 400):
            breakdown = separation_breakdown(dist, 50.0, 512, n_seq)
            assert 0.0 < breakdown.n_seq_last <= n_seq + 1e-9

    def test_variant_selection(self):
        dist = LogNormalDelay(5.0, 2.0)
        eq5 = predict_wa_separation(dist, 50.0, 512, 256, variant="eq5")
        consistent = predict_wa_separation(
            dist, 50.0, 512, 256, variant="consistent"
        )
        breakdown = separation_breakdown(dist, 50.0, 512, 256)
        assert eq5 == pytest.approx(breakdown.wa_eq5)
        assert consistent == pytest.approx(breakdown.wa_consistent)

    def test_ordered_workload_tends_to_one(self):
        # No out-of-order data: phases never end, WA -> 1.
        breakdown = separation_breakdown(UniformDelay(0.0, 30.0), 50.0, 512, 256)
        assert breakdown.wa == 1.0
        assert math.isinf(breakdown.n_arrive)

    def test_wa_at_least_one(self):
        dist = LogNormalDelay(4.0, 1.75)
        for n_seq in (10, 100, 500):
            assert predict_wa_separation(dist, 50.0, 512, n_seq) >= 1.0

    def test_u_shape_in_n_seq(self):
        dist = LogNormalDelay(5.0, 2.0)
        model = ZetaModel(dist, 50.0)
        curve = InOrderCurve(dist, 50.0)
        values = [
            predict_wa_separation(
                dist, 50.0, 512, n_seq, zeta_model=model, in_order_curve=curve
            )
            for n_seq in (16, 256, 500)
        ]
        assert values[1] < values[0]
        assert values[1] < values[2]

    @pytest.mark.parametrize("n_seq", [0, 512, 600])
    def test_rejects_out_of_range_n_seq(self, n_seq):
        with pytest.raises(ModelError):
            predict_wa_separation(LogNormalDelay(4, 1.5), 50.0, 512, n_seq)

    def test_rejects_unknown_variant(self):
        with pytest.raises(ModelError):
            predict_wa_separation(
                LogNormalDelay(4, 1.5), 50.0, 512, 256, variant="other"
            )

    def test_shared_models_give_identical_results(self):
        dist = LogNormalDelay(5.0, 2.0)
        shared_zeta = ZetaModel(dist, 50.0)
        shared_curve = InOrderCurve(dist, 50.0)
        with_shared = predict_wa_separation(
            dist, 50.0, 512, 200,
            zeta_model=shared_zeta, in_order_curve=shared_curve,
        )
        without = predict_wa_separation(dist, 50.0, 512, 200)
        assert with_shared == pytest.approx(without)
