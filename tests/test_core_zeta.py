"""Tests for the subsequent-points model zeta(n) (Eq. 2)."""

import numpy as np
import pytest

from repro import (
    ConstantDelay,
    ExponentialDelay,
    LogNormalDelay,
    ModelConfig,
    UniformDelay,
    ZetaModel,
    zeta,
)
from repro.errors import ModelError


def _brute_force_zeta(dist, dt, n, points=120_000, seed=0):
    """Direct measurement of the quantity Eq. 2 models.

    Simulate the arrival process, and average — over many disk/buffer
    splits — the number of 'disk' points whose generation time exceeds
    the minimum generation time of the next ``n`` arrivals.
    """
    rng = np.random.default_rng(seed)
    tg = dt * np.arange(points, dtype=np.float64)
    ta = tg + dist.sample(points, rng)
    order = np.lexsort((tg, ta))
    tg_sorted = tg[order]
    counts = []
    positions = np.linspace(points // 2, points - n - 1, 60).astype(int)
    for k in positions:
        disk = tg_sorted[:k]
        buffer_min = tg_sorted[k : k + n].min()
        counts.append(np.count_nonzero(disk > buffer_min))
    return float(np.mean(counts))


class TestZetaBasics:
    def test_zero_buffer(self):
        model = ZetaModel(ExponentialDelay(10.0), 50.0)
        assert model.zeta(0) == 0.0
        assert model.zeta(0.4) == 0.0

    def test_monotone_in_n(self):
        model = ZetaModel(LogNormalDelay(4.0, 1.5), 50.0)
        values = [model.zeta(n) for n in (8, 32, 128, 512)]
        assert values == sorted(values)

    def test_ordered_workload_zero(self):
        # Delays bounded below dt: nothing is ever subsequent.
        assert zeta(UniformDelay(0.0, 30.0), 50.0, 256) == pytest.approx(
            0.0, abs=1e-6
        )

    def test_constant_delay_zero(self):
        assert zeta(ConstantDelay(500.0), 50.0, 128) == pytest.approx(
            0.0, abs=1e-6
        )

    def test_caching(self):
        model = ZetaModel(LogNormalDelay(4.0, 1.5), 50.0)
        first = model.zeta(100)
        assert model.zeta(100.2) == first  # rounds to the same key

    def test_callable_alias(self):
        model = ZetaModel(ExponentialDelay(100.0), 10.0)
        assert model(64) == model.zeta(64)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ModelError):
            ZetaModel(ExponentialDelay(1.0), -1.0)
        with pytest.raises(ModelError):
            ZetaModel(ExponentialDelay(1.0), 1.0).zeta(float("inf"))

    def test_grows_with_disorder(self):
        dt = 50.0
        mild = zeta(LogNormalDelay(4.0, 1.5), dt, 256)
        severe = zeta(LogNormalDelay(5.0, 2.0), dt, 256)
        assert severe > mild > 0


class TestZetaAgainstSimulation:
    @pytest.mark.parametrize(
        "dist,rel_tol",
        [
            (ExponentialDelay(150.0), 0.25),
            (LogNormalDelay(4.0, 1.5), 0.30),
            (UniformDelay(0.0, 400.0), 0.25),
        ],
        ids=["exponential", "lognormal", "uniform"],
    )
    def test_matches_brute_force(self, dist, rel_tol):
        dt = 50.0
        n = 128
        simulated = _brute_force_zeta(dist, dt, n)
        modelled = zeta(dist, dt, n)
        # Eq. 2 carries the paper's i.i.d./constant-gap approximations;
        # agreement is within tens of percent, biased low (Section III).
        assert modelled == pytest.approx(simulated, rel=rel_tol)

    def test_model_is_lower_bound_ish(self):
        # The known bias direction: model <= simulation (plus noise).
        dist = LogNormalDelay(4.0, 1.75)
        simulated = _brute_force_zeta(dist, 50.0, 128)
        modelled = zeta(dist, 50.0, 128)
        assert modelled <= simulated * 1.1


class TestZetaNumerics:
    def test_insensitive_to_quadrature_resolution(self):
        dist = LogNormalDelay(5.0, 2.0)
        coarse = zeta(dist, 50.0, 256, ModelConfig(quadrature_nodes=48))
        fine = zeta(dist, 50.0, 256, ModelConfig(quadrature_nodes=384))
        assert coarse == pytest.approx(fine, rel=0.01)

    def test_insensitive_to_dense_region_width(self):
        dist = LogNormalDelay(5.0, 2.0)
        narrow = zeta(dist, 50.0, 256, ModelConfig(dense_terms=256))
        wide = zeta(dist, 50.0, 256, ModelConfig(dense_terms=4096))
        assert narrow == pytest.approx(wide, rel=0.02)

    def test_huge_buffers_with_short_disorder_horizon_are_cheap(self):
        """Regression: zeta(n) cost must not scale with n.

        Mild-disorder workloads produce astronomical phase lengths
        (N_arrive ~ n^2/g); the log-CDF saturates after the disorder
        horizon, so the prefix accumulation must cap there instead of
        walking all n terms (this once hung a hypothesis run for an
        hour).
        """
        import time

        start = time.perf_counter()
        value = zeta(ExponentialDelay(5.0), 100.0, 500_000_000)
        elapsed = time.perf_counter() - start
        assert value == pytest.approx(0.0, abs=1e-6)
        assert elapsed < 2.0

    def test_saturation_cap_does_not_change_heavy_tails(self):
        # The cap must be invisible when the disorder horizon exceeds n.
        dist = LogNormalDelay(5.0, 2.0)
        assert zeta(dist, 50.0, 512) == pytest.approx(1585.0, rel=0.01)

    def test_tail_truncation_controlled_by_tolerance(self):
        dist = LogNormalDelay(5.0, 2.0)
        loose = zeta(dist, 10.0, 256, ModelConfig(term_tolerance=1e-3))
        tight = zeta(dist, 10.0, 256, ModelConfig(term_tolerance=1e-5))
        assert tight >= loose
        assert tight == pytest.approx(loose, rel=0.05)
