"""Tests for the multi-series TimeSeriesDatabase."""

import numpy as np
import pytest

from repro import EngineError, TimeSeriesDatabase
from repro.lsm import SeparationEngine
from repro.workloads import generate_fleet, generate_synthetic
from repro import LogNormalDelay, UniformDelay


class TestSeriesManagement:
    def test_create_and_lookup(self):
        db = TimeSeriesDatabase(memory_budget_per_series=16, sstable_size=16)
        db.create_series("temp")
        assert db.series("temp").policy_label == "pi_c"
        assert db.series_names() == ["temp"]
        assert len(db) == 1

    def test_duplicate_rejected(self):
        db = TimeSeriesDatabase()
        db.create_series("a")
        with pytest.raises(EngineError):
            db.create_series("a")

    def test_unknown_series_rejected(self):
        with pytest.raises(EngineError):
            TimeSeriesDatabase().series("ghost")

    def test_write_creates_on_demand(self):
        db = TimeSeriesDatabase(memory_budget_per_series=16, sstable_size=16)
        db.write("auto", np.arange(10, dtype=np.float64))
        assert "auto" in db.series_names()

    def test_bad_budget_rejected(self):
        with pytest.raises(EngineError):
            TimeSeriesDatabase(memory_budget_per_series=1)

    def test_per_series_budget_override(self):
        db = TimeSeriesDatabase(memory_budget_per_series=512, sstable_size=64)
        state = db.create_series("small", memory_budget=64)
        assert state.config.memory_budget == 64
        assert db.series("small").engine.config.memory_budget == 64

    def test_create_series_with_separation_policy(self):
        db = TimeSeriesDatabase(memory_budget_per_series=128, sstable_size=128)
        state = db.create_series("sep", memory_budget=64, seq_capacity=16)
        assert state.policy_label == "pi_s(n_seq=16)"
        db.write("sep", np.arange(100, dtype=np.float64))
        db.flush_all()
        assert db.snapshot("sep").total_points == 100


class TestWriteAndRead:
    def test_series_are_isolated(self):
        db = TimeSeriesDatabase(memory_budget_per_series=8, sstable_size=8)
        db.write("a", np.arange(20, dtype=np.float64))
        db.write("b", np.arange(100, 105, dtype=np.float64))
        db.flush_all()
        assert db.snapshot("a").total_points == 20
        assert db.snapshot("b").total_points == 5

    def test_empty_write_noop(self):
        db = TimeSeriesDatabase()
        db.write("a", np.array([]))
        assert db.snapshot("a").total_points == 0

    def test_disorder_tracked_across_writes(self):
        db = TimeSeriesDatabase(memory_budget_per_series=8, sstable_size=8)
        db.write("s", np.array([10.0, 20.0]))
        db.write("s", np.array([15.0]))  # out-of-order vs earlier write
        report = db.report()
        assert report.disordered_series == 1


class TestRetune:
    def test_disordered_series_switches_to_separation(self):
        db = TimeSeriesDatabase(
            memory_budget_per_series=256, sstable_size=256
        )
        stream = generate_synthetic(
            20_000, dt=50, delay=LogNormalDelay(5.0, 2.0), seed=3
        )
        db.write("noisy", stream.tg, stream.ta)
        switched = db.retune()
        assert "noisy" in switched
        assert isinstance(db.series("noisy").engine, SeparationEngine)
        # Points survive the switch.
        db.write("noisy", stream.tg + stream.tg.max() + 50.0)
        db.flush_all()
        assert db.snapshot("noisy").total_points == 40_000

    def test_ordered_series_stays_conventional(self):
        db = TimeSeriesDatabase(
            memory_budget_per_series=256, sstable_size=256
        )
        stream = generate_synthetic(
            10_000, dt=50, delay=UniformDelay(0.0, 20.0), seed=4
        )
        db.write("clean", stream.tg, stream.ta)
        switched = db.retune()
        assert "clean" not in switched
        assert db.series("clean").policy_label == "pi_c"

    def test_under_observed_series_skipped(self):
        db = TimeSeriesDatabase(memory_budget_per_series=64, sstable_size=64)
        stream = generate_synthetic(
            100, dt=50, delay=LogNormalDelay(5.0, 2.0), seed=5
        )
        db.write("tiny", stream.tg, stream.ta)
        assert db.retune() == {}

    def test_no_analyzers_without_auto_tune(self):
        db = TimeSeriesDatabase(auto_tune=False)
        db.write("s", np.arange(10, dtype=np.float64))
        assert db.series("s").analyzer is None
        assert db.retune() == {}


class TestFleetReport:
    def test_aggregates(self):
        db = TimeSeriesDatabase(memory_budget_per_series=8, sstable_size=8)
        db.write("a", np.arange(16, dtype=np.float64))
        db.write("b", np.array([10.0, 5.0, 20.0, 15.0, 30.0, 25.0, 40.0, 35.0]))
        db.flush_all()
        report = db.report()
        assert report.series_count == 2
        assert report.total_points == 24
        assert report.write_amplification >= 1.0
        assert report.disordered_series == 1
        assert report.disordered_fraction == pytest.approx(0.5)
        assert len(report.rows) == 2

    def test_empty_database(self):
        report = TimeSeriesDatabase().report()
        assert report.series_count == 0
        assert np.isnan(report.write_amplification)
        assert report.disordered_fraction == 0.0


class TestFleetWorkload:
    def test_fleet_shape(self):
        fleet = generate_fleet(n_series=10, points_per_series=500, seed=1)
        assert len(fleet) == 10
        assert all(len(ds) == 500 for ds in fleet.values())

    def test_disordered_fraction_calibrated(self):
        fleet = generate_fleet(
            n_series=30, points_per_series=2_000,
            disordered_fraction=0.4, seed=2,
        )
        disordered = sum(
            1 for ds in fleet.values() if ds.out_of_order_fraction() > 0
        )
        assert disordered == pytest.approx(12, abs=3)

    def test_rejects_bad_parameters(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            generate_fleet(n_series=0)
        with pytest.raises(WorkloadError):
            generate_fleet(disordered_fraction=2.0)
