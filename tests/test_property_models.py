"""Property-based tests on distributions and the analytical models."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import (
    ExponentialDelay,
    LogNormalDelay,
    UniformDelay,
    predict_wa_conventional,
    predict_wa_separation,
)
from repro.core import InOrderCurve, ZetaModel
from repro.stats import ks_two_sample, sliding_mean

lognormal_params = st.tuples(
    st.floats(min_value=0.0, max_value=6.0),
    st.floats(min_value=0.2, max_value=2.5),
)


@settings(max_examples=30, deadline=None)
@given(params=lognormal_params, x=st.floats(min_value=0.0, max_value=1e7))
def test_cdf_bounded_everywhere(params, x):
    mu, sigma = params
    value = float(LogNormalDelay(mu, sigma).cdf(x))
    assert 0.0 <= value <= 1.0


@settings(max_examples=30, deadline=None)
@given(
    params=lognormal_params,
    q=st.floats(min_value=0.001, max_value=0.999),
)
def test_quantile_inverts_cdf(params, q):
    mu, sigma = params
    dist = LogNormalDelay(mu, sigma)
    assert float(dist.cdf(dist.quantile(q))) == np.float64(q).item() or abs(
        float(dist.cdf(dist.quantile(q))) - q
    ) < 1e-6


@settings(max_examples=20, deadline=None)
@given(
    mean=st.floats(min_value=1.0, max_value=500.0),
    dt=st.floats(min_value=1.0, max_value=100.0),
    n_lo=st.integers(min_value=1, max_value=64),
    n_delta=st.integers(min_value=1, max_value=64),
)
def test_zeta_monotone_in_buffer_size(mean, dt, n_lo, n_delta):
    model = ZetaModel(ExponentialDelay(mean), dt)
    assert model.zeta(n_lo + n_delta) >= model.zeta(n_lo) - 1e-9


@settings(max_examples=20, deadline=None)
@given(
    mean=st.floats(min_value=1.0, max_value=500.0),
    dt=st.floats(min_value=1.0, max_value=100.0),
    alpha=st.integers(min_value=1, max_value=500),
)
def test_in_order_count_bounded_by_arrivals(mean, dt, alpha):
    curve = InOrderCurve(ExponentialDelay(mean), dt)
    value = curve.expected_in_order(alpha)
    assert 0.0 <= value <= alpha


@settings(max_examples=15, deadline=None)
@given(
    mean=st.floats(min_value=1.0, max_value=300.0),
    dt=st.floats(min_value=5.0, max_value=100.0),
    budget=st.integers(min_value=4, max_value=128),
)
def test_wa_models_at_least_one(mean, dt, budget):
    dist = ExponentialDelay(mean)
    assert predict_wa_conventional(dist, dt, budget) >= 1.0 - 1e-9
    n_seq = budget // 2
    assert predict_wa_separation(dist, dt, budget, n_seq) >= 1.0 - 1e-9


@settings(max_examples=15, deadline=None)
@given(
    high=st.floats(min_value=1.0, max_value=30.0),
    dt=st.floats(min_value=50.0, max_value=200.0),
    budget=st.integers(min_value=4, max_value=64),
)
def test_bounded_subinterval_delays_are_free(high, dt, budget):
    """Delays bounded below dt can never create rewrites."""
    dist = UniformDelay(0.0, min(high, dt * 0.9))
    assert predict_wa_conventional(dist, dt, budget) == 1.0
    assert predict_wa_separation(dist, dt, budget, budget // 2) == 1.0


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=1,
        max_size=200,
    ),
    window=st.integers(min_value=1, max_value=50),
)
def test_sliding_mean_stays_within_range(values, window):
    data = np.asarray(values)
    out = sliding_mean(data, window)
    assert out.size == data.size
    assert np.all(out >= data.min() - 1e-9)
    assert np.all(out <= data.max() + 1e-9)


@settings(max_examples=30, deadline=None)
@given(
    a=st.lists(
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        min_size=2,
        max_size=300,
    ),
    b=st.lists(
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        min_size=2,
        max_size=300,
    ),
)
def test_ks_statistic_properties(a, b):
    forward = ks_two_sample(np.asarray(a), np.asarray(b))
    backward = ks_two_sample(np.asarray(b), np.asarray(a))
    assert 0.0 <= forward.statistic <= 1.0
    assert 0.0 <= forward.pvalue <= 1.0
    assert forward.statistic == backward.statistic
