"""Property-based oracle tests for the query layer.

Whatever the data layout an engine produced, a range query's result
count must equal a naive scan over the raw points, and the aggregate
query must agree with numpy on count/min/max/sum.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import (
    ConventionalEngine,
    IoTDBStyleEngine,
    LsmConfig,
    SeparationEngine,
    execute_aggregate_query,
    execute_range_query,
)

streams = st.lists(
    st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
    min_size=1,
    max_size=200,
    unique=True,
)

ranges = st.tuples(
    st.floats(min_value=-1.2e5, max_value=1.2e5, allow_nan=False),
    st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
)

engine_builders = st.sampled_from(
    [
        lambda: ConventionalEngine(LsmConfig(memory_budget=8, sstable_size=8)),
        lambda: SeparationEngine(
            LsmConfig(memory_budget=8, sstable_size=8, seq_capacity=3)
        ),
        lambda: IoTDBStyleEngine(
            LsmConfig(memory_budget=8, sstable_size=8), l1_file_limit=3
        ),
    ]
)


@settings(max_examples=80, deadline=None)
@given(tg=streams, query=ranges, build=engine_builders, flush=st.booleans())
def test_range_query_matches_naive_scan(tg, query, build, flush):
    data = np.asarray(tg, dtype=np.float64)
    engine = build()
    engine.ingest(data)
    if flush:
        engine.flush_all()
    lo, width = query
    hi = lo + width
    stats = execute_range_query(engine.snapshot(), lo, hi)
    expected = int(np.count_nonzero((data >= lo) & (data <= hi)))
    assert stats.result_points == expected
    # Reading never misses: disk reads cover at least the disk results.
    assert stats.disk_points_read + stats.memtable_points_scanned >= expected


@settings(max_examples=80, deadline=None)
@given(tg=streams, query=ranges, build=engine_builders, flush=st.booleans())
def test_aggregate_query_matches_numpy(tg, query, build, flush):
    data = np.asarray(tg, dtype=np.float64)
    engine = build()
    engine.ingest(data)
    if flush:
        engine.flush_all()
    lo, width = query
    hi = lo + width
    result = execute_aggregate_query(engine.snapshot(), lo, hi)
    inside = data[(data >= lo) & (data <= hi)]
    assert result.count == inside.size
    if inside.size:
        assert result.minimum == inside.min()
        assert result.maximum == inside.max()
        assert abs(result.total - inside.sum()) < 1e-6 * max(
            1.0, abs(inside.sum())
        )
    else:
        assert np.isnan(result.minimum)
