"""Every example script must run to completion (their assertions bite)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[1] / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed:\n{completed.stdout[-2000:]}\n"
        f"{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"
