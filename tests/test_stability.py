"""Tail-latency stability: group-commit WAL, scheduler, backpressure.

Covers the robustness machinery end to end:

* stability knob validation on :class:`LsmConfig`;
* group-commit WAL bit-identity, durability window and sync barrier;
* crash mid-group-commit recovery for every registered engine class;
* scheduler/stop-the-world equivalence and bounded per-append work;
* crash mid-schedule recovery under overload faults;
* backpressure state transitions in both ``wait`` and ``error`` modes;
* the injectable fault clock and the stability report renderer.
"""

import json
import os

import numpy as np
import pytest

from repro import (
    AdaptiveEngine,
    BackpressureError,
    ComposedEngine,
    ConfigError,
    ConventionalEngine,
    FaultInjector,
    FaultPlan,
    IoTDBStyleEngine,
    LsmConfig,
    MultiLevelEngine,
    SeparationEngine,
    TieredEngine,
    TimeSeriesDatabase,
    WriteAheadLog,
    read_wal,
    recover_adaptive,
    recover_engine,
)
from repro.distributions import ExponentialDelay
from repro.errors import EngineError, InjectedCrash
from repro.faults import OVERLOAD_FAULT_KINDS, run_crash_case
from repro.lsm import HEALTHY, SHEDDING, THROTTLED
from repro.obs import render_stability_report, summarize_stability
from repro.workloads import generate_synthetic

#: Small buffers so a few thousand points exercise many landings.
_SMALL = dict(memory_budget=64, sstable_size=32)

#: Scheduler pacing used by the equivalence tests: slow enough that the
#: queue stays populated across batches, with admission kept healthy so
#: only the pacing itself is under test.
_PACED = dict(
    compaction_scheduler=True,
    compaction_work_unit=256,
    compaction_tokens_per_point=2.0,
    compaction_burst=2048,
    backpressure_throttle=10**9,
    backpressure_shed=10**9,
)

#: Every registered engine class, with constructor kwargs and whether
#: ingest wants aligned arrival times.
_ENGINE_CASES = {
    "pi_c": (ConventionalEngine, {}, False),
    "pi_s": (SeparationEngine, {}, False),
    "adaptive": (AdaptiveEngine, {"check_interval": 512}, True),
    "iotdb": (IoTDBStyleEngine, {"policy": "conventional", "l1_file_limit": 4}, False),
    "multilevel": (MultiLevelEngine, {"size_ratio": 4, "max_levels": 4}, False),
    "tiered": (TieredEngine, {"tier_fanout": 3, "max_levels": 4}, False),
    "composed": (
        ComposedEngine,
        {"placement": "split", "compaction": "multilevel"},
        False,
    ),
}


def _stream(n=3000, seed=7):
    return generate_synthetic(n, dt=1.0, delay=ExponentialDelay(mean=40.0), seed=seed)


# -- config validation ---------------------------------------------------------


@pytest.mark.parametrize(
    "overrides, fragment",
    [
        (dict(wal_group_records=0), "wal_group_records"),
        (dict(wal_group_bytes=0), "wal_group_bytes"),
        (dict(compaction_work_unit=0), "compaction_work_unit"),
        (dict(compaction_tokens_per_point=0.0), "compaction_tokens_per_point"),
        (dict(compaction_burst=0), "compaction_burst"),
        (dict(backpressure_throttle=0), "backpressure_throttle"),
        (dict(backpressure_shed=-3), "backpressure_shed"),
        (
            dict(backpressure_throttle=500, backpressure_shed=100),
            "must not exceed",
        ),
        (dict(backpressure_mode="panic"), "backpressure_mode"),
    ],
)
def test_stability_knob_validation(overrides, fragment):
    with pytest.raises(ConfigError, match=fragment):
        LsmConfig(64, 32, **overrides)


def test_with_stability_rejects_unknown_knob():
    with pytest.raises(ConfigError, match="unknown stability knob"):
        LsmConfig(64, 32).with_stability(wal_group_record=4)


# -- group-commit WAL ----------------------------------------------------------


def _sample_batches(n_batches=9, points=16, seed=3):
    rng = np.random.default_rng(seed)
    batches, start = [], 0
    for _ in range(n_batches):
        tg = np.sort(rng.uniform(0, 1e4, points))
        batches.append((tg, start))
        start += points
    return batches


def test_group_commit_bytes_identical_to_per_record(tmp_path):
    """Grouping changes commit timing, never the on-disk byte stream."""
    per_record = str(tmp_path / "per_record.wal")
    grouped = str(tmp_path / "grouped.wal")
    wal_a = WriteAheadLog(per_record)
    wal_b = WriteAheadLog(grouped, group_records=4)
    for tg, start in _sample_batches():
        wal_a.append(tg, start)
        wal_b.append(tg, start)
    wal_a.close()
    wal_b.close()
    with open(per_record, "rb") as a, open(grouped, "rb") as b:
        assert a.read() == b.read()
    assert wal_b.coalescing_ratio > 1.0


def test_group_commit_durability_window_and_sync(tmp_path):
    """Pending frames are not durable until the group or sync commits."""
    path = str(tmp_path / "grouped.wal")
    wal = WriteAheadLog(path, group_records=3)
    batches = _sample_batches(n_batches=7)
    for tg, start in batches:
        wal.append(tg, start)
    # 7 appends, trigger at 3: two groups (6 records) are on disk, one
    # acknowledged record is still pending in memory.
    assert wal.appended == 7
    assert wal.pending_records == 1
    assert wal.groups_committed == 2
    assert len(read_wal(path).records) == 6
    wal.sync()
    assert wal.pending_records == 0
    result = read_wal(path)
    assert len(result.records) == 7
    assert not result.torn
    for record, (tg, start) in zip(result.records, batches):
        assert record.start_id == start
        np.testing.assert_array_equal(record.tg, tg)
    wal.close()


def test_group_commit_bytes_trigger(tmp_path):
    """A byte-sized group commits even when the record trigger is huge."""
    path = str(tmp_path / "bytes.wal")
    wal = WriteAheadLog(path, group_records=1_000_000, group_bytes=64)
    tg, start = _sample_batches(n_batches=1)[0]
    wal.append(tg, start)  # one 16-point frame is > 64 bytes
    assert wal.pending_records == 0
    assert len(read_wal(path).records) == 1
    wal.close()


def test_fresh_wal_header_is_durable_before_first_group(tmp_path):
    """A crash inside the first group window leaves a valid empty WAL."""
    path = str(tmp_path / "fresh.wal")
    wal = WriteAheadLog(path, group_records=100)
    tg, start = _sample_batches(n_batches=1)[0]
    wal.append(tg, start)
    # The frame is pending, but the header was flushed eagerly: the file
    # on disk must already read as a valid, empty WAL.
    assert wal.pending_records == 1
    assert os.path.getsize(path) > 0
    result = read_wal(path)
    assert result.records == []
    assert not result.torn
    wal.close()


# -- crash mid-group-commit, every registered engine ---------------------------


@pytest.mark.parametrize("key", sorted(_ENGINE_CASES))
def test_torn_group_crash_recovers_last_complete_record(key, tmp_path):
    """Recovery after a crash mid-group-commit is exact for every engine.

    A torn append commits the pending group, tears the in-flight frame,
    and kills the run; recovery must truncate the tail and reproduce the
    crash-free write history over the durable prefix.
    """
    cls, kwargs, wants_ta = _ENGINE_CASES[key]
    wal_path = str(tmp_path / f"{key}.wal")
    config = LsmConfig(**_SMALL, wal_path=wal_path).with_stability(
        wal_group_records=3
    )
    faults = FaultInjector(FaultPlan(seed=1, torn_wal_append_at=11))
    live = cls(config=config, faults=faults, **kwargs)
    dataset = _stream()
    step = 100
    with pytest.raises(InjectedCrash):
        for start in range(0, len(dataset), step):
            region = slice(start, start + step)
            if wants_ta:
                live.ingest(dataset.tg[region], dataset.ta[region])
            else:
                live.ingest(dataset.tg[region])
    del live  # the process is dead; only the files survive

    scan = read_wal(wal_path)
    assert scan.torn, "the torn frame must be detectable"
    # Appends 1-10 were acknowledged; the torn branch committed them all
    # before tearing frame 11, so the durable prefix is 10 full records.
    assert len(scan.records) == 10

    if key == "adaptive":
        report = recover_adaptive(wal_path, config=config, engine_kwargs=kwargs)
    else:
        report = recover_engine(cls, wal_path, config=config, engine_kwargs=kwargs)
    assert report.wal_torn
    assert report.verified
    durable = report.durable_points
    assert durable == 10 * step

    clean = cls(config=LsmConfig(**_SMALL), **kwargs)
    if wants_ta:
        clean.ingest(dataset.tg[:durable], dataset.ta[:durable])
    else:
        clean.ingest(dataset.tg[:durable])
    recovered = report.engine
    assert recovered.stats.disk_writes == clean.stats.disk_writes
    assert np.array_equal(recovered.stats.write_counts, clean.stats.write_counts)


# -- incremental scheduler -----------------------------------------------------


@pytest.mark.parametrize("key", sorted(set(_ENGINE_CASES) - {"adaptive"}))
def test_scheduler_matches_stop_the_world(key, tmp_path):
    """Pacing landings must not change what lands, for every kernel."""
    cls, kwargs, _ = _ENGINE_CASES[key]
    dataset = _stream(4000, seed=11)
    baseline = cls(config=LsmConfig(**_SMALL), **kwargs)
    paced = cls(config=LsmConfig(**_SMALL).with_stability(**_PACED), **kwargs)
    step = 137
    for start in range(0, len(dataset), step):
        region = slice(start, start + step)
        baseline.ingest(dataset.tg[region])
        paced.ingest(dataset.tg[region])
    baseline.flush_all()
    paced.flush_all()
    assert paced.scheduler is not None
    assert len(paced.scheduler) == 0, "flush_all must drain the queue"
    assert baseline.ingested_points == paced.ingested_points
    assert baseline.write_amplification == paced.write_amplification
    assert np.array_equal(baseline.stats.write_counts, paced.stats.write_counts)
    baseline.verify()
    paced.verify()


def test_scheduler_bounds_per_append_work():
    """No single append may execute more than one bucket's worth of work."""
    dataset = _stream(4000, seed=5)
    config = LsmConfig(**_SMALL).with_stability(
        compaction_scheduler=True,
        compaction_work_unit=32,
        compaction_tokens_per_point=1.0,
        compaction_burst=128,
        backpressure_throttle=10**9,
        backpressure_shed=10**9,
    )
    engine = ConventionalEngine(config)
    step = 100
    for start in range(0, len(dataset), step):
        engine.ingest(dataset.tg[start : start + step])
    scheduler = engine.scheduler
    # Per batch: at most burst + refill tokens of charged work, plus one
    # work unit of overshoot (spend() may overdraw a unit).
    bound = 128 + 1.0 * step + 32
    assert 0 < scheduler.max_batch_work_points <= bound
    engine.flush_all()
    engine.verify()


def test_checkpoint_drains_scheduler(tmp_path):
    """A checkpoint is a sync point: nothing may stay queued."""
    dataset = _stream(2000, seed=9)
    engine = ConventionalEngine(LsmConfig(**_SMALL).with_stability(**_PACED))
    engine.ingest(dataset.tg)
    path = str(tmp_path / "paced.ckpt")
    engine.save_checkpoint(path)
    assert len(engine.scheduler) == 0
    restored = ConventionalEngine.restore(path)
    assert restored.ingested_points == engine.ingested_points
    assert np.array_equal(restored.stats.write_counts, engine.stats.write_counts)
    restored.verify()


@pytest.mark.parametrize("fault", OVERLOAD_FAULT_KINDS)
def test_crash_mid_schedule_recovers_exactly(fault, tmp_path):
    """Overload cases: crash while degraded, group-commit + scheduler on."""
    result = run_crash_case("pi_c", fault, seed=0, workdir=str(tmp_path))
    assert result.ok, result.describe()


# -- backpressure --------------------------------------------------------------


def _congested_config(**overrides):
    """A scheduler that cannot keep up, so landing debt accumulates."""
    base = dict(
        compaction_scheduler=True,
        compaction_work_unit=32,
        compaction_tokens_per_point=0.01,
        compaction_burst=1,
    )
    base.update(overrides)
    return LsmConfig(**_SMALL).with_stability(**base)


def test_backpressure_wait_mode_throttles_then_recovers():
    dataset = _stream(4000, seed=13)
    config = _congested_config(
        backpressure_throttle=256,
        backpressure_shed=2048,
        backpressure_mode="wait",
    )
    engine = ConventionalEngine(config)
    step = 64
    for start in range(0, len(dataset), step):
        engine.ingest(dataset.tg[start : start + step])
    admission = engine.admission
    states_entered = {target for _, target, _ in admission.transitions}
    assert THROTTLED in states_entered
    assert admission.stall_count > 0
    assert admission.total_stall_ms >= admission.max_stall_ms >= 0.0
    engine.flush_all()
    engine.verify()
    assert engine.ingested_points == len(dataset)
    # With the backlog drained, the next admission sees a tiny debt and
    # the controller recovers to healthy.
    engine.ingest(dataset.tg[:1])
    assert engine.admission.state == HEALTHY


def test_backpressure_shedding_wait_mode_drains():
    dataset = _stream(2000, seed=17)
    config = _congested_config(
        backpressure_throttle=192,
        backpressure_shed=192,  # throttle == shed: straight to shedding
        backpressure_mode="wait",
    )
    engine = ConventionalEngine(config)
    step = 64
    for start in range(0, len(dataset), step):
        engine.ingest(dataset.tg[start : start + step])
    transitions = engine.admission.transitions
    assert SHEDDING in {target for _, target, _ in transitions}
    # A shedding wait drains the whole backlog, so the admission right
    # after it sees only the live MemTable and recovers to healthy.
    assert any(
        source == SHEDDING and target == HEALTHY
        for source, target, _ in transitions
    )
    engine.flush_all()
    engine.verify()


def test_backpressure_error_mode_rejects_before_wal(tmp_path):
    wal_path = str(tmp_path / "shed.wal")
    dataset = _stream(2000, seed=19)
    config = LsmConfig(**_SMALL, wal_path=wal_path).with_stability(
        compaction_scheduler=True,
        compaction_work_unit=32,
        compaction_tokens_per_point=0.01,
        compaction_burst=1,
        backpressure_throttle=128,
        backpressure_shed=128,
        backpressure_mode="error",
    )
    engine = ConventionalEngine(config)
    step = 256
    engine.ingest(dataset.tg[:step])  # builds up far more debt than 128
    ingested_before = engine.ingested_points
    appended_before = engine.wal.appended
    with pytest.raises(BackpressureError, match="shedding load"):
        engine.ingest(dataset.tg[step : 2 * step])
    # The shed batch left no trace: nothing ingested, nothing logged.
    assert engine.ingested_points == ingested_before
    assert engine.wal.appended == appended_before
    assert engine.admission.shed_batches == 1
    # After the backlog drains the same batch is admitted verbatim.
    engine.flush_all()
    engine.ingest(dataset.tg[step : 2 * step])
    assert engine.ingested_points == ingested_before + step
    engine.flush_all()
    engine.verify()


def test_database_surfaces_backpressure_and_sync(tmp_path):
    db = TimeSeriesDatabase(
        memory_budget_per_series=64,
        sstable_size=32,
        auto_tune=False,
        durability_dir=str(tmp_path / "fleet"),
        stability=dict(wal_group_records=4, compaction_scheduler=True),
    )
    dataset = _stream(600, seed=23)
    db.write("s1", dataset.tg)
    assert db.backpressure_state("s1") == HEALTHY
    engine = db.series("s1").engine
    # Group commit may hold acknowledged frames; sync is the barrier.
    db.sync("s1")
    assert engine.wal.pending_records == 0
    scan = read_wal(engine.config.wal_path)
    assert scan.total_points == len(dataset)

    manifest_path = db.checkpoint_all()
    manifest = json.loads(open(manifest_path).read())
    assert manifest["stability"] == db.stability
    revived = TimeSeriesDatabase.recover(str(tmp_path / "fleet"))
    assert revived.stability == db.stability
    series = revived.series("s1")
    assert series.config.wal_group_records == 4
    assert series.config.compaction_scheduler is True
    assert series.engine.ingested_points == len(dataset)


# -- injectable fault clock ----------------------------------------------------


def test_fault_clock_is_injectable():
    """Delay spikes and backoff stall through the injected clock only."""
    sleeps: list[float] = []
    injector = FaultInjector(
        FaultPlan(seed=0, fsync_delay_ms=5.0, fsync_delay_every=2),
        sleep=sleeps.append,
    )
    assert injector.maybe_delay("wal.fsync") == 0.0  # 1st: not the every-2nd
    assert injector.maybe_delay("wal.fsync") == 5.0
    assert injector.maybe_delay("wal.fsync") == 0.0
    assert injector.maybe_delay("wal.fsync") == 5.0
    assert sleeps == [0.005, 0.005]
    assert injector.slept_s == pytest.approx(0.01)
    assert injector.counts["delay:wal.fsync"] == 4


# -- stability report ----------------------------------------------------------


def _trace_events():
    return [
        {"type": "wal.group_commit", "records": 4, "bytes": 600},
        {"type": "wal.group_commit", "records": 2, "bytes": 300},
        {
            "type": "backpressure",
            "from_state": "healthy",
            "to_state": "throttled",
            "debt_points": 300,
        },
        {
            "type": "backpressure",
            "from_state": "throttled",
            "to_state": "healthy",
            "debt_points": 40,
        },
        {"type": "stall", "state": "throttled", "duration_ms": 1.5, "work_points": 128},
        {"type": "span", "name": "merge", "incremental": True, "ms": 0.3},
        {"type": "span", "name": "merge", "ms": 0.2},
    ]


def test_summarize_stability_folds_events():
    summary = summarize_stability(_trace_events())
    assert summary.group_commits == 2
    assert summary.group_records == 6
    assert summary.coalescing_ratio == 3.0
    assert summary.max_group_records == 4
    assert summary.transitions == [
        ("healthy", "throttled", 300),
        ("throttled", "healthy", 40),
    ]
    assert summary.entered == {"throttled": 1, "healthy": 1}
    assert summary.stall_count == 1
    assert summary.stall_max_ms == 1.5
    assert summary.incremental_merges == 1


def test_render_stability_report_sections():
    text = render_stability_report(_trace_events(), source="unit")
    assert "stability report: unit" in text
    assert "group-commit WAL" in text
    assert "healthy -> throttled" in text
    assert "writer stalls" in text
    assert "incremental landings: 1" in text


def test_stability_report_cli_subcommand(tmp_path, capsys):
    from repro.cli import main

    trace = tmp_path / "trace.jsonl"
    trace.write_text("\n".join(json.dumps(e) for e in _trace_events()) + "\n")
    assert main(["stability-report", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "group-commit WAL" in out
    assert "backpressure transitions" in out
