"""Tests for discrete delay distributions."""

import numpy as np
import pytest

from repro import DistributionError, zeta
from repro.distributions import DiscreteDelay
from repro.distributions.discrete import periodic_batch_delay


class TestDiscreteDelay:
    def test_cdf_steps(self):
        dist = DiscreteDelay([0.0, 10.0, 20.0], [0.5, 0.3, 0.2])
        assert dist.cdf(-1.0) == 0.0
        assert dist.cdf(0.0) == pytest.approx(0.5)
        assert dist.cdf(9.99) == pytest.approx(0.5)
        assert dist.cdf(10.0) == pytest.approx(0.8)
        assert dist.cdf(100.0) == 1.0

    def test_quantile_picks_atoms(self):
        dist = DiscreteDelay([0.0, 10.0, 20.0], [0.5, 0.3, 0.2])
        assert dist.quantile(0.4) == 0.0
        assert dist.quantile(0.7) == 10.0
        assert dist.quantile(0.99) == 20.0

    def test_values_sorted_and_normalised(self):
        dist = DiscreteDelay([20.0, 0.0], [2.0, 6.0])
        assert list(dist.atoms) == [0.0, 20.0]
        assert np.allclose(dist.probabilities, [0.75, 0.25])

    def test_moments(self):
        dist = DiscreteDelay([0.0, 10.0], [0.5, 0.5])
        assert dist.mean() == pytest.approx(5.0)
        assert dist.variance() == pytest.approx(25.0)

    def test_sampling_matches_weights(self, rng):
        dist = DiscreteDelay([1.0, 2.0], [0.8, 0.2])
        draws = dist.sample(20_000, rng)
        assert np.mean(draws == 1.0) == pytest.approx(0.8, abs=0.02)

    def test_support_upper(self):
        assert DiscreteDelay([3.0, 7.0], [1, 1]).support_upper() == 7.0

    @pytest.mark.parametrize(
        "values,weights",
        [([], []), ([1.0], [1.0, 2.0]), ([-1.0], [1.0]), ([1.0], [0.0])],
    )
    def test_rejects_bad_construction(self, values, weights):
        with pytest.raises(DistributionError):
            DiscreteDelay(values, weights)


class TestPeriodicBatchDelay:
    def test_structure(self):
        dist = periodic_batch_delay(period=50_000.0, batch_weight=0.1, ticks=3)
        assert list(dist.atoms) == [0.0, 50_000.0, 100_000.0, 150_000.0]
        assert dist.probabilities[0] == pytest.approx(0.9)
        # Tick probabilities decay geometrically.
        assert dist.probabilities[1] > dist.probabilities[2] > dist.probabilities[3]

    def test_zeta_consumes_atoms(self):
        # The WA models must work on a purely atomic law: delays of
        # exactly 0 or one 50-tick period, dt=1000 (the H shape).
        dist = periodic_batch_delay(
            period=50_000.0, batch_weight=0.05, ticks=2
        )
        value = zeta(dist, 1000.0, 128)
        assert np.isfinite(value)
        assert value >= 0.0
        # Atoms 50 intervals deep make *some* points subsequent.
        assert value > 0.0

    def test_no_batches_means_no_disorder(self):
        dist = periodic_batch_delay(period=50_000.0, batch_weight=0.0)
        # All mass at delay 0 -> arrival order is generation order, so
        # no data point is ever subsequent to the buffered minimum.
        assert zeta(dist, 1000.0, 128) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"period": 0.0, "batch_weight": 0.1},
            {"period": 10.0, "batch_weight": 1.0},
            {"period": 10.0, "batch_weight": 0.1, "ticks": 0},
            {"period": 10.0, "batch_weight": 0.1, "tick_decay": 1.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(DistributionError):
            periodic_batch_delay(**kwargs)
