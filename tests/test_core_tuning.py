"""Tests for Algorithm 1 (tune_separation_policy)."""

import numpy as np
import pytest

from repro import (
    LogNormalDelay,
    UniformDelay,
    tune_separation_policy,
)
from repro.core import CONVENTIONAL, SEPARATION
from repro.errors import ModelError


class TestPolicyDecision:
    def test_severe_disorder_chooses_separation(self):
        decision = tune_separation_policy(
            LogNormalDelay(5.0, 2.0), 50.0, 512, sstable_size=512
        )
        assert decision.policy == SEPARATION
        assert decision.seq_capacity is not None
        assert 1 <= decision.seq_capacity <= 511
        assert decision.r_s_star < decision.r_c
        assert decision.predicted_wa == decision.r_s_star

    def test_ordered_workload_chooses_conventional(self):
        decision = tune_separation_policy(
            UniformDelay(0.0, 20.0), 50.0, 512, sstable_size=512
        )
        assert decision.policy == CONVENTIONAL
        assert decision.seq_capacity is None
        assert decision.r_c == pytest.approx(1.0)
        assert decision.predicted_wa == decision.r_c

    def test_sweep_is_recorded(self):
        decision = tune_separation_policy(LogNormalDelay(5.0, 2.0), 50.0, 128)
        assert decision.sweep_n_seq.size == decision.sweep_r_s.size
        assert decision.sweep_n_seq.size >= 8
        assert np.all(decision.sweep_n_seq >= 1)
        assert np.all(decision.sweep_n_seq <= 127)
        assert decision.r_s_star == pytest.approx(float(decision.sweep_r_s.min()))

    def test_exhaustive_covers_every_capacity(self):
        decision = tune_separation_policy(
            LogNormalDelay(5.0, 2.0), 50.0, 32, exhaustive=True
        )
        assert list(decision.sweep_n_seq) == list(range(1, 32))

    def test_refined_search_close_to_exhaustive(self):
        dist = LogNormalDelay(5.0, 2.0)
        exhaustive = tune_separation_policy(dist, 50.0, 64, exhaustive=True)
        refined = tune_separation_policy(dist, 50.0, 64)
        assert refined.r_s_star == pytest.approx(
            exhaustive.r_s_star, rel=0.02
        )

    def test_describe_mentions_policy(self):
        decision = tune_separation_policy(LogNormalDelay(5.0, 2.0), 50.0, 128)
        assert "pi_" in decision.describe()

    def test_granularity_correction_changes_marginal_calls(self):
        # M3-like workload: raw Eq. 3 under-predicts pi_c and picks it;
        # with the engine's real granularity padding pi_s wins.
        dist = LogNormalDelay(4.0, 2.0)
        raw = tune_separation_policy(dist, 50.0, 512)
        corrected = tune_separation_policy(dist, 50.0, 512, sstable_size=512)
        assert corrected.r_c > raw.r_c

    def test_rejects_tiny_budget(self):
        with pytest.raises(ModelError):
            tune_separation_policy(LogNormalDelay(4, 1.5), 50.0, 1)
