"""Fault-injection tests: plans, the injector, engine fault boundaries."""

import pytest

from repro import (
    ConventionalEngine,
    ExponentialDelay,
    LsmConfig,
    RingBufferSink,
    SeparationEngine,
    Telemetry,
)
from repro.errors import (
    ConfigError,
    FaultError,
    InjectedCrash,
    TransientIOFault,
)
from repro.faults import FaultInjector, FaultPlan
from repro.faults.crashtest import CRASH_TEST_ENGINES, run_crash_case
from repro.workloads import generate_synthetic


def _dataset(n=3000, seed=0):
    return generate_synthetic(
        n, dt=1.0, delay=ExponentialDelay(mean=40.0), seed=seed
    )


def _memory_telemetry():
    sink = RingBufferSink()
    return Telemetry(sinks=[sink]), sink


class TestFaultPlan:
    def test_defaults_arm_nothing(self):
        assert not FaultPlan().any_armed

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crash_at_flush": 0},
            {"crash_at_merge": -1},
            {"torn_wal_append_at": 0},
            {"transient_flush_faults": -1},
            {"max_retries": -1},
            {"backoff_base_s": -0.1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(FaultError):
            FaultPlan(**kwargs)

    def test_config_rejects_non_plan(self):
        with pytest.raises(ConfigError):
            LsmConfig(8, 8, fault_plan="crash please")

    def test_config_accepts_plan(self):
        config = LsmConfig(8, 8, fault_plan=FaultPlan(crash_at_flush=1))
        engine = ConventionalEngine(config)
        assert engine.faults is not None
        assert engine.faults.plan.crash_at_flush == 1


class TestFaultInjector:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultError):
            FaultInjector(FaultPlan()).fire("fsync")

    def test_crash_fires_at_exact_occurrence(self):
        injector = FaultInjector(FaultPlan(crash_at_merge=3))
        injector.fire("merge")
        injector.fire("merge")
        with pytest.raises(InjectedCrash):
            injector.fire("merge")
        # One-shot: the same occurrence does not re-fire.
        injector.fire("merge")
        assert injector.occurrences("merge") == 4
        assert injector.injected == [("merge", "crash")]

    def test_transient_faults_lead_then_clear(self):
        injector = FaultInjector(FaultPlan(transient_flush_faults=2))
        for _ in range(2):
            with pytest.raises(TransientIOFault):
                injector.fire("flush")
        injector.fire("flush")
        assert injector.injected_count == 2

    def test_torn_prefix_is_strict_prefix(self):
        injector = FaultInjector(FaultPlan(seed=3))
        for size in (2, 10, 1000):
            cut = injector.torn_prefix_bytes(size)
            assert 1 <= cut < size

    def test_corrupt_file_respects_spare_prefix(self, tmp_path):
        path = tmp_path / "blob.bin"
        original = bytes(range(64))
        path.write_bytes(original)
        FaultInjector(FaultPlan(seed=1)).corrupt_file(str(path), spare_prefix=8)
        mutated = path.read_bytes()
        assert mutated != original
        assert mutated[:8] == original[:8]
        assert sum(a != b for a, b in zip(mutated, original)) == 1


class TestEngineFaultBoundary:
    def test_disabled_injection_is_one_branch(self):
        engine = ConventionalEngine(LsmConfig(64, 32))
        assert engine.faults is None
        engine.ingest(_dataset(500).tg)
        engine.flush_all()
        engine.verify()

    def test_crash_at_flush_leaves_pre_fault_state(self):
        plan = FaultPlan(crash_at_flush=1)
        engine = SeparationEngine(
            LsmConfig(64, 32, seq_capacity=48, fault_plan=plan)
        )
        dataset = _dataset(2000, seed=1)
        before_disk = 0
        with pytest.raises(InjectedCrash):
            for lo in range(0, 2000, 100):
                before_disk = engine.snapshot().disk_points
                engine.ingest(dataset.tg[lo : lo + 100])
        # The boundary fired before any state mutated: nothing new
        # reached disk.  (The in-memory state is torn — the simulated
        # process died mid-ingest — which is exactly what recovery from
        # the WAL repairs; see test_recovery.py.)
        assert engine.snapshot().disk_points == before_disk

    def test_transient_faults_retried_and_counted(self):
        plan = FaultPlan(transient_flush_faults=2, backoff_base_s=0.0)
        telemetry, _ = _memory_telemetry()
        engine = ConventionalEngine(
            LsmConfig(64, 32, fault_plan=plan), telemetry=telemetry
        )
        engine.ingest(_dataset(500, seed=2).tg)
        engine.flush_all()
        engine.verify()
        registry = telemetry.registry
        assert registry.counter("fault.transient_retries").value == 2
        assert registry.counter("fault.injected").value == 2

    def test_transient_retry_budget_exhausts(self):
        plan = FaultPlan(
            transient_flush_faults=50, max_retries=2, backoff_base_s=0.0
        )
        engine = ConventionalEngine(LsmConfig(64, 32, fault_plan=plan))
        with pytest.raises(TransientIOFault):
            engine.ingest(_dataset(500, seed=3).tg)

    def test_crash_counted_on_telemetry(self):
        plan = FaultPlan(crash_at_flush=1)
        telemetry, sink = _memory_telemetry()
        engine = ConventionalEngine(
            LsmConfig(64, 32, fault_plan=plan), telemetry=telemetry
        )
        with pytest.raises(InjectedCrash):
            engine.ingest(_dataset(500, seed=4).tg)
        assert telemetry.registry.counter("fault.injected").value == 1
        events = [e for e in sink.events if e.get("type") == "fault"]
        assert events and events[0]["kind"] == "crash"


class TestCrashCases:
    """One representative cell per fault kind (the full matrix runs in CI)."""

    @pytest.mark.parametrize("fault", [
        "crash_flush", "crash_merge", "torn_wal", "corrupt_checkpoint",
    ])
    def test_conventional_survives(self, fault, tmp_path):
        result = run_crash_case("pi_c", fault, 0, str(tmp_path))
        assert result.ok, result.describe()

    def test_adaptive_survives_torn_wal(self, tmp_path):
        result = run_crash_case("adaptive", "torn_wal", 0, str(tmp_path))
        assert result.ok, result.describe()

    def test_unknown_engine_rejected(self, tmp_path):
        with pytest.raises(FaultError):
            run_crash_case("rocksdb", "torn_wal", 0, str(tmp_path))

    def test_engine_list_is_complete(self):
        assert set(CRASH_TEST_ENGINES) == {
            "pi_c", "pi_s", "adaptive", "iotdb", "multilevel", "tiered",
        }

    def test_recovery_counters_reconcile(self, tmp_path):
        telemetry, sink = _memory_telemetry()
        result = run_crash_case(
            "pi_s", "torn_wal", 1, str(tmp_path), telemetry=telemetry
        )
        assert result.ok, result.describe()
        registry = telemetry.registry
        assert (
            registry.counter("recovery.replayed_points").value
            == result.replayed_points
        )
        assert registry.counter("recovery.runs").value == 1
        recoveries = [e for e in sink.events if e.get("type") == "recovery"]
        assert recoveries[-1]["durable_points"] == result.durable_points
