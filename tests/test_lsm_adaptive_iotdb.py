"""Tests for the adaptive and IoTDB-style engines."""

import numpy as np
import pytest

from repro import (
    AdaptiveEngine,
    EngineError,
    IoTDBStyleEngine,
    LogNormalDelay,
    LsmConfig,
)
from repro.workloads import generate_synthetic


class TestAdaptiveEngine:
    def test_starts_conventional(self):
        engine = AdaptiveEngine(LsmConfig(memory_budget=64, sstable_size=64))
        assert engine.current_policy == "pi_c"

    def test_switches_on_disordered_stream(self):
        dataset = generate_synthetic(
            40_000, dt=50, delay=LogNormalDelay(5.0, 2.0), seed=11
        )
        engine = AdaptiveEngine(
            LsmConfig(memory_budget=512, sstable_size=512), check_interval=4096
        )
        engine.ingest(dataset.tg, dataset.ta)
        engine.flush_all()
        assert engine.current_policy.startswith("pi_s")
        assert engine.switch_log
        assert engine.write_amplification >= 1.0

    def test_stays_conventional_on_ordered_stream(self):
        dataset = generate_synthetic(
            30_000, dt=50, delay=LogNormalDelay(1.0, 0.3), seed=11
        )
        engine = AdaptiveEngine(
            LsmConfig(memory_budget=512, sstable_size=512), check_interval=4096
        )
        engine.ingest(dataset.tg, dataset.ta)
        engine.flush_all()
        assert engine.current_policy == "pi_c"
        assert engine.write_amplification == pytest.approx(1.0, abs=0.01)

    def test_no_data_loss_across_switches(self):
        dataset = generate_synthetic(
            30_000, dt=50, delay=LogNormalDelay(5.0, 2.0), seed=12
        )
        engine = AdaptiveEngine(
            LsmConfig(memory_budget=256, sstable_size=256), check_interval=4096
        )
        engine.ingest(dataset.tg, dataset.ta)
        engine.flush_all()
        snapshot = engine.snapshot()
        assert snapshot.total_points == len(dataset)
        ids = np.concatenate([t.ids for t in snapshot.tables])
        assert np.unique(ids).size == len(dataset)

    def test_decision_log_records_evidence(self):
        dataset = generate_synthetic(
            20_000, dt=50, delay=LogNormalDelay(5.0, 2.0), seed=13
        )
        engine = AdaptiveEngine(
            LsmConfig(memory_budget=512, sstable_size=512), check_interval=4096
        )
        engine.ingest(dataset.tg, dataset.ta)
        assert engine.decision_log
        index, decision = engine.decision_log[0]
        assert index > 0
        assert decision.r_c > 0

    def test_misaligned_inputs_rejected(self):
        engine = AdaptiveEngine(LsmConfig(memory_budget=64, sstable_size=64))
        with pytest.raises(EngineError):
            engine.ingest(np.array([1.0, 2.0]), np.array([1.0]))

    def test_bad_check_interval_rejected(self):
        with pytest.raises(EngineError):
            AdaptiveEngine(check_interval=0)


class TestIoTDBStyleEngine:
    def test_flushes_land_in_l1(self):
        engine = IoTDBStyleEngine(
            LsmConfig(memory_budget=8, sstable_size=8),
            policy="conventional",
            l1_file_limit=100,
        )
        engine.ingest(np.arange(24, dtype=np.float64))
        assert len(engine.l1_files) == 3
        assert engine.l2.empty

    def test_background_compaction_moves_l1_to_l2(self):
        engine = IoTDBStyleEngine(
            LsmConfig(memory_budget=8, sstable_size=8),
            policy="conventional",
            l1_file_limit=2,
        )
        engine.ingest(np.arange(16, dtype=np.float64))
        assert len(engine.l1_files) == 0
        assert engine.l2.total_points == 16
        engine.l2.check_invariants()

    def test_l1_files_may_overlap_under_conventional(self):
        engine = IoTDBStyleEngine(
            LsmConfig(memory_budget=4, sstable_size=4),
            policy="conventional",
            l1_file_limit=100,
        )
        # Interleave old/new so consecutive flushes overlap in range.
        engine.ingest(np.array([0.0, 100.0, 1.0, 101.0, 2.0, 102.0, 3.0, 103.0]))
        (a, b) = engine.l1_files
        assert a.overlaps(b.min_tg, b.max_tg)

    def test_separation_splits_memtables(self):
        engine = IoTDBStyleEngine(
            LsmConfig(memory_budget=8, seq_capacity=4),
            policy="separation",
            l1_file_limit=100,
        )
        engine.ingest(np.array([10.0, 20.0, 30.0, 40.0]))  # seq flush
        engine.ingest(np.array([5.0, 50.0]))
        snapshot = engine.snapshot()
        names = {view.name: len(view) for view in snapshot.memtables}
        assert names == {"C_seq": 1, "C_nonseq": 1}

    def test_throughput_positive_and_policy_insensitive(self):
        dataset = generate_synthetic(
            20_000, dt=50, delay=LogNormalDelay(4.0, 1.5), seed=1
        )
        results = {}
        for policy in ("conventional", "separation"):
            engine = IoTDBStyleEngine(
                LsmConfig(memory_budget=512, seq_capacity=256), policy=policy
            )
            engine.ingest(dataset.tg)
            engine.flush_all()
            results[policy] = engine.throughput_points_per_ms
        assert results["conventional"] > 0
        ratio = results["separation"] / results["conventional"]
        assert 0.9 < ratio < 1.1

    def test_background_time_tracked(self):
        engine = IoTDBStyleEngine(
            LsmConfig(memory_budget=8, sstable_size=8),
            policy="conventional",
            l1_file_limit=2,
        )
        engine.ingest(np.arange(64, dtype=np.float64))
        assert engine.background_ms > 0

    def test_no_data_loss(self):
        rng = np.random.default_rng(9)
        tg = rng.permutation(500).astype(np.float64)
        engine = IoTDBStyleEngine(
            LsmConfig(memory_budget=16, sstable_size=16),
            policy="separation",
            l1_file_limit=4,
        )
        engine.ingest(tg)
        engine.flush_all()
        assert engine.snapshot().total_points == 500

    def test_rejects_unknown_policy(self):
        with pytest.raises(EngineError):
            IoTDBStyleEngine(policy="tiered")

    def test_throughput_nan_before_writes(self):
        engine = IoTDBStyleEngine()
        assert np.isnan(engine.throughput_points_per_ms)
