"""Tests for point batches, merge primitives and snapshots."""

import numpy as np
import pytest

from repro import ConventionalEngine, LsmConfig
from repro.errors import EngineError
from repro.lsm import SSTable, merge_tables_with_batch
from repro.lsm.base import MemTableView, Snapshot
from repro.lsm.points import PointBatch, sort_by_generation


class TestPointBatch:
    def test_len_and_empty(self):
        batch = PointBatch(
            tg=np.array([1.0, 2.0]), ids=np.array([0, 1], dtype=np.int64)
        )
        assert len(batch) == 2
        assert not batch.empty
        empty = PointBatch.concat([])
        assert empty.empty

    def test_misaligned_rejected(self):
        with pytest.raises(EngineError):
            PointBatch(tg=np.array([1.0]), ids=np.array([0, 1], dtype=np.int64))

    def test_sorted_by_generation_stable(self):
        batch = PointBatch(
            tg=np.array([3.0, 1.0, 3.0, 2.0]),
            ids=np.array([10, 11, 12, 13], dtype=np.int64),
        )
        out = batch.sorted_by_generation()
        assert list(out.tg) == [1.0, 2.0, 3.0, 3.0]
        # Stable: equal keys keep arrival order (10 before 12).
        assert list(out.ids) == [11, 13, 10, 12]

    def test_concat_preserves_order(self):
        a = PointBatch(tg=np.array([5.0]), ids=np.array([0], dtype=np.int64))
        b = PointBatch(tg=np.array([1.0]), ids=np.array([1], dtype=np.int64))
        merged = PointBatch.concat([a, b])
        assert list(merged.tg) == [5.0, 1.0]

    def test_sort_by_generation_helper(self):
        tg, ids = sort_by_generation(
            np.array([2.0, 1.0]), np.array([7, 8], dtype=np.int64)
        )
        assert list(tg) == [1.0, 2.0]
        assert list(ids) == [8, 7]


class TestMergePrimitive:
    def test_merges_tables_and_batch(self):
        table = SSTable(
            tg=np.array([1.0, 3.0]), ids=np.array([0, 1], dtype=np.int64)
        )
        tg, ids = merge_tables_with_batch(
            [table], np.array([2.0, 4.0]), np.array([2, 3], dtype=np.int64)
        )
        assert list(tg) == [1.0, 2.0, 3.0, 4.0]
        assert list(ids) == [0, 2, 1, 3]

    def test_empty_table_list(self):
        tg, ids = merge_tables_with_batch(
            [], np.array([5.0]), np.array([9], dtype=np.int64)
        )
        assert list(tg) == [5.0]


class TestSnapshot:
    def test_counts_and_max(self):
        engine = ConventionalEngine(LsmConfig(memory_budget=4, sstable_size=4))
        engine.ingest(np.arange(6, dtype=np.float64))
        snapshot = engine.snapshot()
        assert snapshot.disk_points == 4
        assert snapshot.memory_points == 2
        assert snapshot.total_points == 6
        assert snapshot.max_tg == 5.0

    def test_empty_snapshot(self):
        snapshot = Snapshot(tables=[], memtables=[])
        assert snapshot.total_points == 0
        assert snapshot.max_tg == float("-inf")

    def test_memtable_view_range_count(self):
        view = MemTableView(name="m", tg=np.array([1.0, 5.0, 9.0]))
        assert view.count_in_range(2.0, 9.0) == 2
        assert len(view) == 3

    def test_snapshot_is_frozen_view(self):
        engine = ConventionalEngine(LsmConfig(memory_budget=4, sstable_size=4))
        engine.ingest(np.arange(4, dtype=np.float64))
        before = engine.snapshot()
        engine.ingest(np.arange(4, 8, dtype=np.float64))
        # The earlier snapshot's table list must not grow.
        assert before.disk_points == 4


class TestQuadratureGrid:
    def test_grid_spans_distribution(self):
        from repro import LogNormalDelay

        dist = LogNormalDelay(4.0, 1.0)
        grid = dist.quadrature_grid(nodes=64, tail_mass=1e-6)
        assert grid[0] == 0.0
        assert np.all(np.diff(grid) > 0)
        # Covers essentially all mass.
        assert float(dist.cdf(grid[-1])) > 1.0 - 1e-5
