"""Tests for experiment reporting and ASCII plotting."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.asciiplot import histogram_plot, line_plot, sstable_ranges
from repro.experiments.report import (
    ExperimentResult,
    ResultTable,
    format_table,
    format_value,
)


class TestFormatValue:
    def test_floats_rounded(self):
        assert format_value(3.14159) == "3.142"

    def test_extremes_scientific(self):
        assert "e" in format_value(1.5e9)
        assert "e" in format_value(1.5e-7)

    def test_nan_and_zero(self):
        assert format_value(float("nan")) == "nan"
        assert format_value(0.0) == "0"

    def test_non_floats_passthrough(self):
        assert format_value(42) == "42"
        assert format_value("pi_c") == "pi_c"
        assert format_value(None) == "None"
        assert format_value(True) == "True"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "long_header"], [[1, 2.5], [300, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # equal widths

    def test_width_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            format_table(["a"], [[1, 2]])

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestResultContainers:
    def test_column_extraction(self):
        table = ResultTable("caption", ["x", "y"], [[1, 2], [3, 4]])
        assert table.column("y") == [2, 4]
        with pytest.raises(ExperimentError):
            table.column("z")

    def test_result_render_and_lookup(self):
        result = ExperimentResult(
            experiment_id="figX", title="T", paper_reference="Fig X"
        )
        result.add_table("first table", ["a"], [[1]])
        result.notes.append("observation")
        result.charts.append("(chart)")
        text = result.render()
        assert "figX" in text and "first table" in text
        assert "note: observation" in text and "(chart)" in text
        assert result.table("first").caption == "first table"
        with pytest.raises(ExperimentError):
            result.table("missing")


class TestAsciiPlots:
    def test_line_plot_contains_markers_and_legend(self):
        text = line_plot(
            [0, 1, 2, 3],
            {"a series": [1.0, 2.0, 3.0, 4.0], "b series": [4.0, 3.0, 2.0, 1.0]},
            x_label="x",
            y_label="y",
        )
        assert "[a]" in text and "[b]" in text
        assert "a" in text

    def test_line_plot_rejects_empty(self):
        with pytest.raises(ExperimentError):
            line_plot([1], {})
        with pytest.raises(ExperimentError):
            line_plot([1], {"s": [float("nan")]})

    def test_line_plot_constant_series(self):
        text = line_plot([0, 1], {"c": [5.0, 5.0]})
        assert "c" in text

    def test_histogram_plot_bars(self):
        text = histogram_plot(
            np.array([0.0, 1.0, 2.0]), np.array([10, 5])
        )
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") > lines[1].count("#")

    def test_histogram_rebins_when_many(self):
        edges = np.linspace(0, 1, 101)
        counts = np.ones(100)
        text = histogram_plot(edges, counts, max_rows=10)
        assert len(text.splitlines()) == 10

    def test_histogram_rejects_mismatch(self):
        with pytest.raises(ExperimentError):
            histogram_plot(np.array([0.0, 1.0]), np.array([1, 2]))

    def test_sstable_ranges_marks_query(self):
        text = sstable_ranges(
            [(0.0, 10.0), (12.0, 20.0)], query=(5.0, 15.0)
        )
        assert "=" in text and "|" in text

    def test_sstable_ranges_empty(self):
        assert sstable_ranges([]) == "(no SSTables)"
