"""Tests for the delay analyzer and drift detection."""

import numpy as np
import pytest

from repro import DelayAnalyzer, KsDriftDetector, LogNormalDelay
from repro.errors import ModelError
from repro.workloads import generate_synthetic


def _feed(analyzer, dataset, count=None):
    data = dataset if count is None else dataset.head(count)
    analyzer.observe(data.tg, data.ta)


class TestDelayAnalyzer:
    def test_dt_estimation(self):
        dataset = generate_synthetic(
            5_000, dt=50, delay=LogNormalDelay(4.0, 1.0), seed=1
        )
        analyzer = DelayAnalyzer(memory_budget=512)
        _feed(analyzer, dataset)
        assert analyzer.estimated_dt() == pytest.approx(50.0, rel=0.01)

    def test_fixed_dt_wins(self):
        dataset = generate_synthetic(
            1_000, dt=50, delay=LogNormalDelay(4.0, 1.0), seed=1
        )
        analyzer = DelayAnalyzer(memory_budget=512, dt=10.0)
        _feed(analyzer, dataset)
        assert analyzer.estimated_dt() == 10.0

    def test_profile_empirical_by_default(self):
        dataset = generate_synthetic(
            5_000, dt=50, delay=LogNormalDelay(4.0, 1.0), seed=1
        )
        analyzer = DelayAnalyzer(memory_budget=512)
        _feed(analyzer, dataset)
        profile = analyzer.profile()
        assert profile.family == "empirical"
        assert profile.sample_count > 0
        assert "empirical" in profile.describe()

    def test_profile_parametric_mode_recovers_family(self):
        dataset = generate_synthetic(
            8_000, dt=50, delay=LogNormalDelay(4.0, 1.5), seed=2
        )
        analyzer = DelayAnalyzer(memory_budget=512, use_empirical=False)
        _feed(analyzer, dataset)
        assert analyzer.profile().family == "lognormal"

    def test_recommend_sets_drift_reference(self):
        dataset = generate_synthetic(
            8_000, dt=50, delay=LogNormalDelay(5.0, 2.0), seed=3
        )
        analyzer = DelayAnalyzer(memory_budget=256, sstable_size=256)
        _feed(analyzer, dataset)
        decision = analyzer.recommend()
        assert analyzer.last_decision is decision
        assert analyzer.drift.has_reference
        assert not analyzer.should_retune()

    def test_should_retune_initially_after_window_fills(self):
        dataset = generate_synthetic(
            8_000, dt=50, delay=LogNormalDelay(4.0, 1.0), seed=4
        )
        analyzer = DelayAnalyzer(memory_budget=256, window=1024)
        assert not analyzer.should_retune()  # window empty
        _feed(analyzer, dataset)
        assert analyzer.should_retune()  # full window, no decision yet

    def test_drift_triggers_retune(self):
        calm = generate_synthetic(
            6_000, dt=50, delay=LogNormalDelay(3.0, 0.5), seed=5
        )
        wild = generate_synthetic(
            6_000, dt=50, delay=LogNormalDelay(6.0, 2.0), seed=6
        )
        analyzer = DelayAnalyzer(memory_budget=256, window=2048)
        _feed(analyzer, calm)
        analyzer.recommend()
        assert not analyzer.should_retune()
        _feed(analyzer, wild)
        assert analyzer.should_retune()

    def test_delay_summary(self):
        dataset = generate_synthetic(
            2_000, dt=50, delay=LogNormalDelay(4.0, 1.0), seed=7
        )
        analyzer = DelayAnalyzer(memory_budget=256)
        _feed(analyzer, dataset)
        assert analyzer.delay_summary().count > 0

    def test_errors_on_empty_state(self):
        analyzer = DelayAnalyzer(memory_budget=256)
        with pytest.raises(ModelError):
            analyzer.estimated_dt()
        with pytest.raises(ModelError):
            analyzer.profile()

    def test_misaligned_observe_rejected(self):
        analyzer = DelayAnalyzer(memory_budget=256)
        with pytest.raises(ModelError):
            analyzer.observe(np.array([1.0]), np.array([1.0, 2.0]))


class TestKsDriftDetector:
    def test_no_reference_never_drifts(self, rng):
        detector = KsDriftDetector()
        assert not detector.drifted(rng.normal(0, 1, 5_000))

    def test_same_distribution_no_drift(self, rng):
        detector = KsDriftDetector()
        detector.set_reference(rng.exponential(10, 4_000))
        assert not detector.drifted(rng.exponential(10, 4_000))

    def test_shifted_distribution_drifts(self, rng):
        detector = KsDriftDetector()
        detector.set_reference(rng.exponential(10, 4_000))
        assert detector.drifted(rng.exponential(40, 4_000))

    def test_small_window_withheld(self, rng):
        detector = KsDriftDetector(min_samples=1000)
        detector.set_reference(rng.exponential(10, 4_000))
        assert not detector.drifted(rng.exponential(40, 100))

    def test_statistic_floor_suppresses_tiny_shifts(self, rng):
        detector = KsDriftDetector(statistic_floor=0.5)
        detector.set_reference(rng.normal(0, 1, 50_000))
        # Statistically significant but practically tiny shift.
        assert not detector.drifted(rng.normal(0.05, 1, 50_000))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ModelError):
            KsDriftDetector(alpha=1.5)
        with pytest.raises(ModelError):
            KsDriftDetector(min_samples=1)
        detector = KsDriftDetector()
        with pytest.raises(ModelError):
            detector.set_reference(np.array([1.0]))
