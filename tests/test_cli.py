"""CLI smoke tests: telemetry-report subcommand, --trace, exit codes."""

import json

import pytest

from repro import (
    LogNormalDelay,
    LsmConfig,
    SeparationEngine,
    execute_range_query,
    reset_global_telemetry,
)
from repro.cli import main
from repro.workloads import generate_synthetic


@pytest.fixture(autouse=True)
def _clean_global_telemetry():
    yield
    reset_global_telemetry()


@pytest.fixture()
def trace_path(tmp_path):
    """A real JSONL trace captured from a separation engine run."""
    path = tmp_path / "trace.jsonl"
    dataset = generate_synthetic(
        10_000, dt=50, delay=LogNormalDelay(5.0, 2.0), seed=2
    )
    engine = SeparationEngine(
        LsmConfig(128, 128, seq_capacity=64).with_telemetry(f"jsonl:{path}")
    )
    engine.ingest(dataset.tg)
    engine.flush_all()
    execute_range_query(
        engine.snapshot(), 0.0, 1e9, telemetry=engine.telemetry
    )
    engine.telemetry.close()
    return path


class TestTelemetryReport:
    def test_renders_summary(self, capsys, trace_path):
        assert main(["telemetry-report", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry report" in out
        assert "flush" in out
        assert "merge" in out
        assert "queries" in out

    def test_missing_file_fails(self, capsys, tmp_path):
        assert main(["telemetry-report", str(tmp_path / "nope.jsonl")]) == 1
        assert "error" in capsys.readouterr().err

    def test_corrupt_trace_fails(self, capsys, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span"}\nnot json\n')
        assert main(["telemetry-report", str(path)]) == 1
        assert "invalid JSON" in capsys.readouterr().err

    def test_missing_argument_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["telemetry-report"])
        assert excinfo.value.code == 2


class TestEnginesSubcommand:
    def test_lists_every_registered_engine(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for name in (
            "ConventionalEngine",
            "SeparationEngine",
            "IoTDBStyleEngine(policy=conventional)",
            "IoTDBStyleEngine(policy=separation)",
            "MultiLevelEngine",
            "TieredEngine",
            "AdaptiveEngine",
            "ComposedEngine",
        ):
            assert name in out
        # Policy-triple columns are present and populated.
        for column in ("placement", "flush", "compaction"):
            assert column in out
        assert "single" in out and "split" in out
        assert "separation" in out and "tiered" in out
        assert "engine configurations registered" in out

    def test_rejects_extra_arguments(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["engines", "--bogus"])
        assert excinfo.value.code == 2


class TestExitCodes:
    def test_unknown_flag_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["table02", "--bogus"])
        assert excinfo.value.code == 2

    def test_no_arguments_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2

    def test_unknown_experiment_returns_1(self, capsys):
        assert main(["fig99"]) == 1
        assert "error" in capsys.readouterr().err

    def test_bad_scale_value_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["table02", "--scale", "not-a-number"])
        assert excinfo.value.code == 2


class TestTraceOption:
    def test_experiment_run_writes_trace(self, capsys, tmp_path):
        path = tmp_path / "run.jsonl"
        assert main(["table02", "--scale", "0.05", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"telemetry trace written to {path}" in out
        events = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]
        spans = [e for e in events if e.get("type") == "span"]
        experiment_spans = [e for e in spans if e["name"] == "experiment"]
        assert len(experiment_spans) == 1
        assert experiment_spans[0]["experiment_id"] == "table02"
        assert experiment_spans[0]["duration_ms"] > 0
        # And the captured trace feeds back into the report subcommand.
        assert main(["telemetry-report", str(path)]) == 0
        assert "experiment" in capsys.readouterr().out
