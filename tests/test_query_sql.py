"""Tests for the SQL-dialect query front end."""

import math

import numpy as np
import pytest

from repro import ConventionalEngine, LsmConfig, QueryError
from repro.query.sql import execute_sql, parse_query


@pytest.fixture()
def snapshot():
    engine = ConventionalEngine(LsmConfig(memory_budget=16, sstable_size=16))
    engine.ingest(np.arange(100, dtype=np.float64))
    engine.flush_all()
    return engine.snapshot()


class TestParsing:
    def test_paper_recent_query_form(self):
        parsed = parse_query("SELECT * FROM TS WHERE time > 900")
        assert parsed.select == "*"
        assert parsed.series == "TS"
        assert parsed.lo == pytest.approx(900.0)
        assert math.isinf(parsed.hi)

    def test_paper_historical_query_form(self):
        parsed = parse_query(
            "SELECT * FROM TS WHERE time > 100 AND time < 200"
        )
        assert parsed.lo == pytest.approx(100.0)
        assert parsed.hi == pytest.approx(200.0)

    def test_aggregates_and_case_insensitivity(self):
        assert parse_query("select count(*) from ts").select == "count"
        assert parse_query("SELECT MIN(time) FROM ts").select == "min"
        assert parse_query("Select Avg(Time) From ts;").select == "avg"

    def test_inclusive_operators(self):
        parsed = parse_query("SELECT * FROM ts WHERE time >= 5 AND time <= 9")
        assert parsed.lo == 5.0
        assert parsed.hi == 9.0

    @pytest.mark.parametrize(
        "bad",
        [
            "DROP TABLE ts",
            "SELECT value FROM ts",
            "SELECT * FROM ts WHERE speed > 3",
            "SELECT * FROM ts WHERE time > 1 AND time < 2 AND time > 0",
            "SELECT * FROM ts WHERE time > banana",
            "SELECT * FROM ts WHERE time > 10 AND time < 5",
        ],
    )
    def test_rejects_out_of_dialect(self, bad):
        with pytest.raises(QueryError):
            parse_query(bad)


class TestExecution:
    def test_select_star_counts(self, snapshot):
        stats = execute_sql(
            snapshot, "SELECT * FROM ts WHERE time >= 10 AND time <= 19"
        )
        assert stats.result_points == 10

    def test_strict_bounds_exclude_endpoints(self, snapshot):
        stats = execute_sql(
            snapshot, "SELECT * FROM ts WHERE time > 10 AND time < 19"
        )
        assert stats.result_points == 8

    def test_recent_form_clamps_to_max(self, snapshot):
        stats = execute_sql(snapshot, "SELECT * FROM ts WHERE time > 89")
        assert stats.result_points == 10  # 90..99

    def test_collect_rows(self, snapshot):
        stats = execute_sql(
            snapshot,
            "SELECT * FROM ts WHERE time >= 3 AND time <= 5",
            collect=True,
        )
        assert list(stats.rows) == [3.0, 4.0, 5.0]

    def test_aggregates(self, snapshot):
        where = "WHERE time >= 10 AND time <= 19"
        assert execute_sql(snapshot, f"SELECT COUNT(*) FROM ts {where}") == 10
        assert execute_sql(snapshot, f"SELECT MIN(time) FROM ts {where}") == 10.0
        assert execute_sql(snapshot, f"SELECT MAX(time) FROM ts {where}") == 19.0
        assert execute_sql(
            snapshot, f"SELECT AVG(time) FROM ts {where}"
        ) == pytest.approx(14.5)

    def test_unbounded_query_covers_everything(self, snapshot):
        assert execute_sql(snapshot, "SELECT COUNT(*) FROM ts") == 100
