"""Tests for workload generation: datasets, catalog, real-world stand-ins."""

import numpy as np
import pytest

from repro import LogNormalDelay, WorkloadError
from repro.workloads import (
    TABLE_II,
    TimeSeriesDataset,
    build_dataset,
    dataset_names,
    figure10_segments,
    generate_dynamic,
    generate_s9,
    generate_synthetic,
    generate_vehicle_h,
)
from repro.workloads.dynamic import DelaySegment
from repro.stats import autocorrelation


class TestTimeSeriesDataset:
    def test_delays(self):
        dataset = TimeSeriesDataset(
            name="t",
            tg=np.array([0.0, 10.0, 5.0]),
            ta=np.array([1.0, 12.0, 20.0]),
        )
        assert list(dataset.delays) == [1.0, 2.0, 15.0]

    def test_late_events_differ_from_out_of_order(self):
        # One straggler: a single late event, but two points are
        # out-of-order relative to the running maximum.
        dataset = TimeSeriesDataset(
            name="t",
            tg=np.array([0.0, 30.0, 10.0, 20.0, 40.0]),
            ta=np.array([0.0, 1.0, 2.0, 3.0, 4.0]),
        )
        assert dataset.late_event_fraction() == pytest.approx(1 / 4)
        assert dataset.out_of_order_fraction() == pytest.approx(2 / 5)

    def test_late_event_fraction_trivial_cases(self):
        ordered = TimeSeriesDataset(
            name="o", tg=np.array([1.0, 2.0]), ta=np.array([1.0, 2.0])
        )
        assert ordered.late_event_fraction() == 0.0
        single = TimeSeriesDataset(
            name="s", tg=np.array([1.0]), ta=np.array([1.0])
        )
        assert single.late_event_fraction() == 0.0

    def test_out_of_order_mask(self):
        dataset = TimeSeriesDataset(
            name="t",
            tg=np.array([0.0, 10.0, 5.0, 20.0]),
            ta=np.array([0.0, 1.0, 2.0, 3.0]),
        )
        assert list(dataset.out_of_order_mask()) == [False, False, True, False]
        assert dataset.out_of_order_fraction() == pytest.approx(0.25)

    def test_chunks_cover_everything(self):
        dataset = generate_synthetic(
            100, dt=1, delay=LogNormalDelay(0.0, 0.5), seed=0
        )
        chunks = list(dataset.chunks(33))
        assert [len(c) for c in chunks] == [33, 33, 33, 1]
        rebuilt = np.concatenate([c.tg for c in chunks])
        assert np.array_equal(rebuilt, dataset.tg)

    def test_head(self):
        dataset = generate_synthetic(
            50, dt=1, delay=LogNormalDelay(0.0, 0.5), seed=0
        )
        assert len(dataset.head(10)) == 10

    def test_rejects_unsorted_arrivals(self):
        with pytest.raises(WorkloadError):
            TimeSeriesDataset(
                name="bad",
                tg=np.array([0.0, 1.0]),
                ta=np.array([5.0, 2.0]),
            )

    def test_rejects_misaligned(self):
        with pytest.raises(WorkloadError):
            TimeSeriesDataset(
                name="bad", tg=np.array([0.0]), ta=np.array([0.0, 1.0])
            )

    def test_describe(self):
        dataset = generate_synthetic(
            100, dt=1, delay=LogNormalDelay(0.0, 0.5), seed=0
        )
        assert "out-of-order" in dataset.describe()


class TestSynthetic:
    def test_arrival_sorted(self):
        dataset = generate_synthetic(
            5_000, dt=50, delay=LogNormalDelay(5.0, 2.0), seed=0
        )
        assert np.all(np.diff(dataset.ta) >= 0)

    def test_generation_times_are_arithmetic(self):
        dataset = generate_synthetic(
            1_000, dt=50, delay=LogNormalDelay(4.0, 1.0), seed=0
        )
        assert np.array_equal(
            np.sort(dataset.tg), 50.0 * np.arange(1_000, dtype=float)
        )

    def test_deterministic_per_seed(self):
        a = generate_synthetic(500, dt=10, delay=LogNormalDelay(4, 1), seed=5)
        b = generate_synthetic(500, dt=10, delay=LogNormalDelay(4, 1), seed=5)
        assert np.array_equal(a.tg, b.tg)
        c = generate_synthetic(500, dt=10, delay=LogNormalDelay(4, 1), seed=6)
        assert not np.array_equal(a.tg, c.tg)

    def test_start_time_offset(self):
        dataset = generate_synthetic(
            10, dt=1, delay=LogNormalDelay(0, 0.1), seed=0, start_time=100.0
        )
        assert dataset.tg.min() >= 100.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(WorkloadError):
            generate_synthetic(0, dt=1, delay=LogNormalDelay(0, 1))
        with pytest.raises(WorkloadError):
            generate_synthetic(10, dt=0, delay=LogNormalDelay(0, 1))


class TestCatalog:
    def test_twelve_datasets(self):
        assert dataset_names() == [f"M{i}" for i in range(1, 13)]

    def test_grid_structure(self):
        assert TABLE_II["M1"].dt == 50 and TABLE_II["M7"].dt == 10
        assert TABLE_II["M1"].mu == 4 and TABLE_II["M4"].mu == 5
        assert [TABLE_II[f"M{i}"].sigma for i in (1, 2, 3)] == [1.5, 1.75, 2.0]

    def test_build_dataset(self):
        dataset = build_dataset("M5", n_points=1_000, seed=1)
        assert len(dataset) == 1_000
        assert dataset.dt == 50
        assert dataset.metadata["mu"] == 5.0

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            build_dataset("M13", n_points=10)

    def test_disorder_gradients(self):
        # The property Section V-B reads off Table II.
        fractions = {
            name: build_dataset(name, 20_000, seed=0).out_of_order_fraction()
            for name in ("M1", "M3", "M4", "M7")
        }
        assert fractions["M3"] > fractions["M1"]
        assert fractions["M4"] > fractions["M1"]
        assert fractions["M7"] > fractions["M1"]


class TestDynamic:
    def test_figure10_segments(self):
        segments = figure10_segments(1_000)
        assert len(segments) == 5
        assert all(s.n_points == 1_000 for s in segments)

    def test_generation_continuous_across_segments(self):
        dataset = generate_dynamic(figure10_segments(500), dt=50, seed=0)
        assert len(dataset) == 2_500
        assert np.array_equal(
            np.sort(dataset.tg), 50.0 * np.arange(2_500, dtype=float)
        )
        assert dataset.metadata["boundaries"][-1] == 2_500

    def test_rejects_empty_segments(self):
        with pytest.raises(WorkloadError):
            generate_dynamic([], dt=50)
        with pytest.raises(WorkloadError):
            DelaySegment(0, LogNormalDelay(1, 1))


class TestS9:
    def test_published_statistics(self):
        dataset = generate_s9()
        assert len(dataset) == 30_000
        ooo = 100.0 * dataset.out_of_order_fraction()
        assert ooo == pytest.approx(7.05, abs=1.5)
        intervals = dataset.generation_intervals()
        assert intervals.std() / intervals.mean() > 0.3  # irregular cadence

    def test_skewed_delays(self):
        dataset = generate_s9()
        delays = dataset.delays
        assert delays.mean() > 3 * np.median(delays)

    def test_deterministic(self):
        assert np.array_equal(generate_s9(seed=1).tg, generate_s9(seed=1).tg)

    def test_rejects_bad_parameters(self):
        with pytest.raises(WorkloadError):
            generate_s9(n_points=1)
        with pytest.raises(WorkloadError):
            generate_s9(heavy_weight=1.5)


class TestVehicleH:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_vehicle_h(n_points=80_000, seed=6)

    def test_published_statistics(self, dataset):
        ooo = dataset.out_of_order_mask()
        percent = 100.0 * float(ooo.mean())
        assert percent < 0.3  # paper: 0.0375%
        mean_ooo_delay_s = float(dataset.delays[ooo].mean()) / 1000.0
        assert 1.0 < mean_ooo_delay_s < 6.0  # paper: ~2.49 s

    def test_systematic_resend_mode(self, dataset):
        delays = dataset.delays
        heavy = delays[delays > 10_000.0]
        assert heavy.size > 0
        # Batch deliveries cluster at multiples of the re-send period.
        assert float(np.mean(delays < 50_000.0)) > 0.85

    def test_autocorrelated_delays(self, dataset):
        acf = autocorrelation(dataset.delays, max_lag=5)
        assert not acf.is_independent()
        assert acf.acf[1] > 0.3

    def test_batches_preserve_order(self, dataset):
        # Arrival ties (batches) are emitted in generation order.
        assert np.all(np.diff(dataset.ta) >= 0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(WorkloadError):
            generate_vehicle_h(n_points=1)
        with pytest.raises(WorkloadError):
            generate_vehicle_h(outage_start_prob=1.5)
        with pytest.raises(WorkloadError):
            generate_vehicle_h(outage_mean_points=0.5)
