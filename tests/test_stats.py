"""Tests for the statistics toolkit (repro.stats)."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.errors import ReproError
from repro.stats import (
    Ecdf,
    ExponentialAverage,
    ReservoirSampler,
    SlidingWindowSample,
    autocorrelation,
    build_histogram,
    kolmogorov_sf,
    ks_two_sample,
    sliding_mean,
    sliding_sum,
    summarize,
)


class TestEcdf:
    def test_step_values(self):
        ecdf = Ecdf(np.array([1.0, 2.0, 3.0]))
        assert ecdf(0.0) == 0.0
        assert ecdf(1.0) == pytest.approx(1 / 3)
        assert ecdf(2.5) == pytest.approx(2 / 3)
        assert ecdf(3.0) == 1.0

    def test_vectorised(self):
        ecdf = Ecdf(np.array([1.0, 2.0]))
        assert np.allclose(ecdf(np.array([0.5, 1.5, 2.5])), [0.0, 0.5, 1.0])

    def test_quantile_support(self):
        ecdf = Ecdf(np.array([5.0, 1.0, 3.0]))
        assert ecdf.support() == (1.0, 5.0)
        assert ecdf.quantile(0.5) == 3.0

    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            Ecdf(np.array([]))


class TestHistogram:
    def test_density_integrates_to_one(self, rng):
        hist = build_histogram(rng.normal(0, 1, 10_000), bins=30)
        mass = float(np.sum(hist.density() * hist.widths))
        assert mass == pytest.approx(1.0)

    def test_proportions_sum_to_one(self, rng):
        hist = build_histogram(rng.exponential(5, 1_000), bins=20)
        assert float(hist.proportions().sum()) == pytest.approx(1.0)

    def test_mode_bin(self):
        hist = build_histogram(
            np.array([1.0, 1.1, 1.2, 9.0]), bins=2, range_=(0.0, 10.0)
        )
        lo, hi = hist.mode_bin()
        assert lo == 0.0 and hi == 5.0

    def test_total(self, rng):
        hist = build_histogram(rng.random(123), bins=5)
        assert hist.total == 123

    def test_rejects_empty_and_bad_bins(self):
        with pytest.raises(ReproError):
            build_histogram(np.array([np.nan]))
        with pytest.raises(ReproError):
            build_histogram(np.array([1.0]), bins=0)


class TestAutocorrelation:
    def test_lag_zero_is_one(self, rng):
        result = autocorrelation(rng.normal(0, 1, 500), max_lag=5)
        assert result.acf[0] == pytest.approx(1.0)

    def test_iid_noise_inside_band(self, rng):
        result = autocorrelation(rng.normal(0, 1, 20_000), max_lag=20)
        # Nearly all lags within the 95% independence band.
        assert result.significant_lags().size <= 2

    def test_ar1_is_detected(self, rng):
        noise = rng.normal(0, 1, 10_000)
        series = np.empty_like(noise)
        series[0] = noise[0]
        for index in range(1, len(noise)):
            series[index] = 0.8 * series[index - 1] + noise[index]
        result = autocorrelation(series, max_lag=10)
        assert not result.is_independent()
        assert result.acf[1] == pytest.approx(0.8, abs=0.05)

    def test_constant_series(self):
        result = autocorrelation(np.full(100, 3.0), max_lag=5)
        assert result.acf[0] == 1.0
        assert np.all(result.acf[1:] == 0.0)

    def test_band_shrinks_with_n(self, rng):
        small = autocorrelation(rng.normal(0, 1, 100), max_lag=2)
        large = autocorrelation(rng.normal(0, 1, 10_000), max_lag=2)
        assert large.band < small.band

    def test_rejects_too_short(self):
        with pytest.raises(ReproError):
            autocorrelation(np.array([1.0]))


class TestKs:
    def test_same_sample_statistic_zero(self, rng):
        data = rng.normal(0, 1, 500)
        result = ks_two_sample(data, data)
        assert result.statistic == 0.0
        assert result.pvalue == pytest.approx(1.0)

    def test_matches_scipy(self, rng):
        a = rng.normal(0, 1, 800)
        b = rng.normal(0.3, 1, 900)
        ours = ks_two_sample(a, b)
        reference = scipy_stats.ks_2samp(a, b, method="asymp")
        assert ours.statistic == pytest.approx(reference.statistic, abs=1e-12)
        assert ours.pvalue == pytest.approx(reference.pvalue, rel=0.1, abs=1e-4)

    def test_distinguishes_distributions(self, rng):
        a = rng.normal(0, 1, 2_000)
        b = rng.normal(1.0, 1, 2_000)
        assert ks_two_sample(a, b).rejects_same_distribution()

    def test_accepts_same_distribution(self, rng):
        a = rng.normal(0, 1, 2_000)
        b = rng.normal(0, 1, 2_000)
        assert not ks_two_sample(a, b).rejects_same_distribution(alpha=0.001)

    def test_kolmogorov_sf_limits(self):
        assert kolmogorov_sf(0.0) == 1.0
        assert kolmogorov_sf(10.0) == pytest.approx(0.0, abs=1e-12)
        # Known value: P(K > 1.36) ~ 0.049 (the 5% critical point).
        assert kolmogorov_sf(1.36) == pytest.approx(0.049, abs=0.002)

    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            ks_two_sample(np.array([]), np.array([1.0]))


class TestSmoothing:
    def test_sliding_mean_constant(self):
        out = sliding_mean(np.full(10, 4.0), window=3)
        assert np.allclose(out, 4.0)

    def test_sliding_mean_known(self):
        out = sliding_mean(np.array([1.0, 2.0, 3.0, 4.0]), window=2)
        assert np.allclose(out, [1.0, 1.5, 2.5, 3.5])

    def test_sliding_sum_known(self):
        out = sliding_sum(np.array([1.0, 2.0, 3.0]), window=2)
        assert np.allclose(out, [1.0, 3.0, 5.0])

    def test_window_longer_than_series(self):
        out = sliding_mean(np.array([2.0, 4.0]), window=10)
        assert np.allclose(out, [2.0, 3.0])

    def test_empty_series(self):
        assert sliding_mean(np.array([]), window=3).size == 0

    def test_rejects_bad_window(self):
        with pytest.raises(ReproError):
            sliding_mean(np.array([1.0]), window=0)

    def test_exponential_average_bias_corrected(self):
        avg = ExponentialAverage(alpha=0.5)
        assert avg.value == 0.0
        assert not avg.initialized
        avg.update(10.0)
        assert avg.value == pytest.approx(10.0)
        avg.update(20.0)
        assert 10.0 < avg.value < 20.0

    def test_exponential_average_rejects_bad_alpha(self):
        with pytest.raises(ReproError):
            ExponentialAverage(alpha=0.0)


class TestReservoir:
    def test_keeps_everything_under_capacity(self):
        sampler = ReservoirSampler(capacity=10)
        sampler.offer_many(np.arange(5))
        assert len(sampler) == 5
        assert sampler.seen == 5

    def test_uniformity(self):
        counts = np.zeros(100)
        for trial in range(400):
            sampler = ReservoirSampler(
                capacity=10, rng=np.random.default_rng(trial)
            )
            sampler.offer_many(np.arange(100))
            counts[sampler.sample().astype(int)] += 1
        # Each element kept ~10% of the time.
        assert counts.mean() == pytest.approx(40.0)
        assert counts.std() < 12.0

    def test_reset(self):
        sampler = ReservoirSampler(capacity=4)
        sampler.offer_many(np.arange(10))
        sampler.reset()
        assert len(sampler) == 0 and sampler.seen == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ReproError):
            ReservoirSampler(capacity=0)


class TestSlidingWindowSample:
    def test_keeps_most_recent(self):
        window = SlidingWindowSample(capacity=3)
        window.offer_many(np.arange(10))
        assert list(window.sample()) == [7.0, 8.0, 9.0]
        assert window.seen == 10
        assert window.full

    def test_not_full_initially(self):
        window = SlidingWindowSample(capacity=5)
        window.offer(1.0)
        assert not window.full
        assert len(window) == 1


class TestSummary:
    def test_known_values(self):
        summary = summarize(np.arange(101, dtype=float))
        assert summary.count == 101
        assert summary.mean == 50.0
        assert summary.median == 50.0
        assert summary.minimum == 0.0
        assert summary.maximum == 100.0
        assert summary.p95 == pytest.approx(95.0)

    def test_ignores_non_finite(self):
        summary = summarize(np.array([1.0, np.nan, 2.0, np.inf]))
        assert summary.count == 2

    def test_format_contains_fields(self):
        text = summarize(np.array([1.0, 2.0])).format(unit="ms")
        assert "mean=" in text and "ms" in text

    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            summarize(np.array([np.nan]))
