"""Cold-tier conformance: the columnar block format must be invisible.

The contract of :mod:`repro.lsm.blocks` is that storage layout is a
pure representation choice — switching a table (or a whole engine) to
the columnar format may change *cost accounting* (blocks skipped, disk
points read) but never *results* or *write accounting*.  This suite
pins that contract across every first-class engine and the two composed
policy triples:

* range queries and aggregates are bitwise identical between a row
  engine and a cold-configured twin at every lifecycle stage
  (mid-ingest, pre-flush, post-flush, post-conversion),
* write amplification, per-point write counts and the compaction event
  log are unchanged by cold emission,
* columnar tables survive checkpoint/restore (and crash recovery with
  an injected-fault corrupted checkpoint) with their format intact,
* cold statistics memory is visible to the backpressure debt model.
"""

import math

import numpy as np
import pytest

from repro import (
    AdaptiveEngine,
    ConventionalEngine,
    IoTDBStyleEngine,
    LsmConfig,
    MultiLevelEngine,
    SeparationEngine,
    TieredEngine,
    execute_aggregate_query,
    execute_range_query,
    recover_engine,
)
from repro.errors import ConfigError, EngineError
from repro.faults import FaultInjector, FaultPlan
from repro.lsm.backpressure import AdmissionController
from repro.lsm.blocks import (
    BLOCK_STAT_BYTES,
    POINT_BYTES,
    BlockStats,
    ColumnarStorage,
    RowStorage,
    make_storage,
)
from repro.lsm.checkpoint import pack_tables, unpack_tables
from repro.lsm.policies.compose import compose_engine
from repro.lsm.sstable import SSTable, build_sstables
from repro.workloads import TABLE_II

#: Mirrors the conformance harness geometry (small tables, real
#: cascades) with the cold twin differing *only* in layout knobs.
CONFIG_ROW = LsmConfig(memory_budget=64, sstable_size=32)
#: ``level=0`` makes every landing columnar, so cold emission is
#: exercised on engines whose structure never leaves level 0.
CONFIG_COLD = CONFIG_ROW.with_cold_tier(block_size=8, level=0)

N_POINTS = 4000
CHUNK = 937

WORKLOADS = ("M1", "M8")


def _factories(cfg):
    """Engine key -> zero-state factory over ``cfg`` (9 conformance keys)."""
    return {
        "conventional": lambda: ConventionalEngine(cfg),
        "separation": lambda: SeparationEngine(cfg),
        "iotdb_conventional": lambda: IoTDBStyleEngine(
            cfg, policy="conventional", l1_file_limit=4
        ),
        "iotdb_separation": lambda: IoTDBStyleEngine(
            cfg, policy="separation", l1_file_limit=4
        ),
        "multilevel": lambda: MultiLevelEngine(cfg, size_ratio=4, max_levels=4),
        "tiered": lambda: TieredEngine(cfg, tier_fanout=3, max_levels=4),
        "adaptive": lambda: AdaptiveEngine(cfg, check_interval=512),
        "composed_split_tiered": lambda: compose_engine(
            "split", compaction="tiered", config=cfg
        ),
        "composed_split_multilevel": lambda: compose_engine(
            "split", compaction="multilevel", config=cfg
        ),
    }


ENGINE_KEYS = sorted(_factories(CONFIG_ROW))


def _dataset(workload):
    return TABLE_II[workload].build(n_points=N_POINTS, seed=3)


def _ingest(engine, dataset, lo, hi):
    adaptive = isinstance(engine, AdaptiveEngine)
    for pos in range(lo, hi, CHUNK):
        stop = min(pos + CHUNK, hi)
        if adaptive:
            engine.ingest(dataset.tg[pos:stop], dataset.ta[pos:stop])
        else:
            engine.ingest(dataset.tg[pos:stop])


def _windows(dataset):
    """Deterministic probe windows: covering, interior, narrow, empty."""
    lo, hi = float(dataset.tg.min()), float(dataset.tg.max())
    span = hi - lo
    return [
        (lo, hi),
        (lo + 0.2 * span, lo + 0.8 * span),
        (lo + 0.45 * span, lo + 0.55 * span),
        (hi + span, hi + 2 * span),
    ]


def _assert_reads_identical(row_engine, cold_engine, dataset):
    """Every query observable the user can see is bitwise equal."""
    row_snap, cold_snap = row_engine.snapshot(), cold_engine.snapshot()
    for lo, hi in _windows(dataset):
        r = execute_range_query(row_snap, lo, hi, collect=True)
        c = execute_range_query(cold_snap, lo, hi, collect=True)
        assert r.result_points == c.result_points
        np.testing.assert_array_equal(r.rows, c.rows)
        np.testing.assert_array_equal(r.row_ids, c.row_ids)
        ra = execute_aggregate_query(row_snap, lo, hi)
        ca = execute_aggregate_query(cold_snap, lo, hi)
        assert ra.count == ca.count
        # Bitwise, not approximate: the cold tier's stored sums must be
        # the very floats the row path computes.
        assert ra.total == ca.total or (
            math.isnan(ra.total) and math.isnan(ca.total)
        )
        assert ra.minimum == ca.minimum or (
            math.isnan(ra.minimum) and math.isnan(ca.minimum)
        )
        assert ra.maximum == ca.maximum or (
            math.isnan(ra.maximum) and math.isnan(ca.maximum)
        )


def _assert_write_accounting_identical(row_engine, cold_engine):
    """Cold emission changes layout only — never what or when we write."""
    rs, cs = row_engine.stats, cold_engine.stats
    assert rs.user_points == cs.user_points
    assert rs.disk_writes == cs.disk_writes
    assert rs.write_amplification == cs.write_amplification
    np.testing.assert_array_equal(rs.write_counts, cs.write_counts)
    assert [
        (e.kind, e.new_points, e.rewritten_points, e.tables_written)
        for e in rs.events
    ] == [
        (e.kind, e.new_points, e.rewritten_points, e.tables_written)
        for e in cs.events
    ]


# -- engine conformance --------------------------------------------------------


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("key", ENGINE_KEYS)
class TestColdEngineConformance:
    def test_row_and_cold_twins_agree_at_every_stage(self, key, workload):
        dataset = _dataset(workload)
        row_engine = _factories(CONFIG_ROW)[key]()
        cold_engine = _factories(CONFIG_COLD)[key]()

        # Stage 1: mid-ingest (buffered + partially compacted state).
        _ingest(row_engine, dataset, 0, N_POINTS // 2)
        _ingest(cold_engine, dataset, 0, N_POINTS // 2)
        _assert_reads_identical(row_engine, cold_engine, dataset)
        _assert_write_accounting_identical(row_engine, cold_engine)

        # Stage 2: pre-flush (full stream ingested, buffers still warm).
        _ingest(row_engine, dataset, N_POINTS // 2, N_POINTS)
        _ingest(cold_engine, dataset, N_POINTS // 2, N_POINTS)
        _assert_reads_identical(row_engine, cold_engine, dataset)
        _assert_write_accounting_identical(row_engine, cold_engine)

        # Stage 3: post-flush (everything on disk).
        row_engine.flush_all()
        cold_engine.flush_all()
        _assert_reads_identical(row_engine, cold_engine, dataset)
        _assert_write_accounting_identical(row_engine, cold_engine)
        cold_tables = cold_engine.snapshot().tables
        assert cold_tables and all(t.is_columnar for t in cold_tables)
        assert all(not t.is_columnar for t in row_engine.snapshot().tables)

        # Stage 4: post-conversion (row twin converted in place catches
        # up to the cold twin; layout-only, so accounting still agrees).
        converted = row_engine.convert_cold(block_size=8)
        assert converted == len(row_engine.snapshot().tables)
        assert all(t.is_columnar for t in row_engine.snapshot().tables)
        _assert_reads_identical(row_engine, cold_engine, dataset)
        _assert_write_accounting_identical(row_engine, cold_engine)
        row_engine.verify()
        cold_engine.verify()


class TestColdEmissionModes:
    def test_age_gated_emission_matches_row_results(self):
        """``cold_age`` emits columnar only behind the watermark."""
        dataset = _dataset("M1")
        span = float(dataset.tg.max()) - float(dataset.tg.min())
        # The age must sit inside the delay spread: landings only
        # re-emit chunks within the out-of-order reach of the watermark,
        # so a larger cutoff would never see a qualifying chunk.
        config = CONFIG_ROW.with_cold_tier(
            block_size=8, level=10**6, age=0.01 * span
        )
        row_engine = ConventionalEngine(CONFIG_ROW)
        cold_engine = ConventionalEngine(config)
        _ingest(row_engine, dataset, 0, N_POINTS)
        _ingest(cold_engine, dataset, 0, N_POINTS)
        row_engine.flush_all()
        cold_engine.flush_all()
        tables = cold_engine.snapshot().tables
        formats = {t.is_columnar for t in tables}
        # The settled prefix went cold, the recent tail stayed row.
        assert formats == {True, False}
        threshold = max(t.max_tg for t in tables) - config.cold_age
        assert all(
            t.max_tg <= threshold for t in tables if t.is_columnar
        )
        _assert_reads_identical(row_engine, cold_engine, dataset)
        _assert_write_accounting_identical(row_engine, cold_engine)

    def test_convert_cold_respects_age_and_counts_tables(self):
        dataset = _dataset("M1")
        config = CONFIG_ROW.with_cold_tier(block_size=8, level=10**6)
        engine = ConventionalEngine(config)
        _ingest(engine, dataset, 0, N_POINTS)
        engine.flush_all()
        tables = engine.snapshot().tables
        assert all(not t.is_columnar for t in tables)
        cutoff = tables[len(tables) // 2].max_tg
        converted = engine.convert_cold(max_tg=cutoff)
        assert 0 < converted < len(tables)
        for table in engine.snapshot().tables:
            assert table.is_columnar == (table.max_tg <= cutoff)
        # Converting again is a no-op on already-cold tables.
        assert engine.convert_cold(max_tg=cutoff) == 0
        assert engine.cold_tables_converted == converted

    def test_conversion_is_not_charged_as_write_amplification(self):
        dataset = _dataset("M1")
        engine = ConventionalEngine(CONFIG_ROW)
        _ingest(engine, dataset, 0, N_POINTS)
        engine.flush_all()
        before = (engine.stats.disk_writes, len(engine.stats.events))
        assert engine.convert_cold(block_size=8) > 0
        assert (engine.stats.disk_writes, len(engine.stats.events)) == before


# -- durability ----------------------------------------------------------------


class TestColdDurability:
    def test_checkpoint_preserves_columnar_format(self, tmp_path):
        dataset = _dataset("M1")
        engine = ConventionalEngine(CONFIG_COLD)
        _ingest(engine, dataset, 0, N_POINTS)
        engine.flush_all()
        ckpt = str(tmp_path / "cold.ckpt")
        engine.save_checkpoint(ckpt)
        restored = ConventionalEngine.restore(ckpt)
        live, back = engine.snapshot(), restored.snapshot()
        assert [t.storage.block_size for t in live.tables] == [
            t.storage.block_size for t in back.tables
        ]
        assert all(t.is_columnar for t in back.tables)
        assert restored.cold_tier_bytes() == engine.cold_tier_bytes()
        _assert_reads_identical(engine, restored, dataset)
        restored.verify()

    def test_restore_continues_bit_identically(self, tmp_path):
        dataset = _dataset("M8")
        engine = SeparationEngine(CONFIG_COLD)
        _ingest(engine, dataset, 0, N_POINTS // 2)
        ckpt = str(tmp_path / "mid.ckpt")
        engine.save_checkpoint(ckpt)
        restored = SeparationEngine.restore(ckpt)
        _ingest(engine, dataset, N_POINTS // 2, N_POINTS)
        _ingest(restored, dataset, N_POINTS // 2, N_POINTS)
        engine.flush_all()
        restored.flush_all()
        _assert_reads_identical(engine, restored, dataset)
        _assert_write_accounting_identical(engine, restored)

    def test_legacy_checkpoint_without_blocks_restores_row(self):
        tg = np.sort(np.random.default_rng(0).uniform(0, 100, 96))
        tables = build_sstables(tg, np.arange(96), 32, block_size=8)
        arrays = {}
        pack_tables(arrays, "lvl", tables)
        del arrays["lvl.blocks"]  # what a pre-cold-tier checkpoint holds
        legacy = unpack_tables(arrays, "lvl")
        assert len(legacy) == len(tables)
        assert all(not t.is_columnar for t in legacy)
        for old, new in zip(tables, legacy):
            np.testing.assert_array_equal(old.tg, new.tg)
            np.testing.assert_array_equal(old.ids, new.ids)

    def test_crash_recovery_with_corrupt_checkpoint(self, tmp_path):
        wal_path = str(tmp_path / "cold.wal")
        ckpt_path = str(tmp_path / "cold.ckpt")
        dataset = _dataset("M1")
        config = LsmConfig(
            64, 32, wal_path=wal_path
        ).with_cold_tier(block_size=8, level=0)
        engine = ConventionalEngine(config)
        _ingest(engine, dataset, 0, N_POINTS // 2)
        engine.save_checkpoint(ckpt_path)
        _ingest(engine, dataset, N_POINTS // 2, N_POINTS)
        engine.wal.close()
        FaultInjector(FaultPlan(seed=9)).corrupt_file(ckpt_path, spare_prefix=8)
        report = recover_engine(
            ConventionalEngine,
            wal_path,
            checkpoint_path=ckpt_path,
            config=LsmConfig(64, 32).with_cold_tier(block_size=8, level=0),
        )
        assert report.checkpoint_corrupt and not report.checkpoint_used
        assert report.replayed_points == N_POINTS
        assert report.verified
        _assert_reads_identical(engine, report.engine, dataset)
        _assert_write_accounting_identical(engine, report.engine)

    def test_recovery_from_intact_cold_checkpoint(self, tmp_path):
        wal_path = str(tmp_path / "cold.wal")
        ckpt_path = str(tmp_path / "cold.ckpt")
        dataset = _dataset("M1")
        config = LsmConfig(
            64, 32, wal_path=wal_path
        ).with_cold_tier(block_size=8, level=0)
        engine = ConventionalEngine(config)
        _ingest(engine, dataset, 0, N_POINTS // 2)
        engine.save_checkpoint(ckpt_path)
        _ingest(engine, dataset, N_POINTS // 2, N_POINTS)
        engine.wal.close()
        report = recover_engine(
            ConventionalEngine,
            wal_path,
            checkpoint_path=ckpt_path,
            config=LsmConfig(64, 32).with_cold_tier(block_size=8, level=0),
        )
        assert report.checkpoint_used and report.verified
        recovered = report.engine.snapshot()
        assert recovered.tables and all(
            t.is_columnar for t in recovered.tables
        )
        _assert_reads_identical(engine, report.engine, dataset)


# -- cost model & telemetry ----------------------------------------------------


class TestColdCostModel:
    def test_backpressure_debt_sees_cold_stats_memory(self):
        dataset = _dataset("M1")
        engine = ConventionalEngine(CONFIG_ROW)
        _ingest(engine, dataset, 0, N_POINTS)
        engine.flush_all()
        admission = AdmissionController(engine)
        before = admission.debt_points()
        assert engine.cold_tier_bytes() == 0
        assert engine.convert_cold(block_size=8) > 0
        resident = engine.cold_tier_bytes()
        assert resident > 0
        assert admission.debt_points() == before + resident // POINT_BYTES

    def test_cold_bytes_match_block_count(self):
        tg = np.sort(np.random.default_rng(1).uniform(0, 100, 200))
        table = SSTable(tg, np.arange(200))
        assert table.stats_nbytes == 0
        assert table.convert_to_columnar(16)
        assert table.block_stats.nblocks == 13  # ceil(200 / 16)
        assert table.stats_nbytes == 13 * BLOCK_STAT_BYTES

    def test_telemetry_counters(self):
        dataset = _dataset("M1")
        engine = ConventionalEngine(CONFIG_COLD.with_telemetry())
        _ingest(engine, dataset, 0, N_POINTS)
        engine.flush_all()
        registry = engine.telemetry.registry
        assert registry.counter("cold_tier.tables_converted").value > 0
        engine.cold_tier_bytes()
        assert registry.gauge("cold_tier.resident_bytes").value > 0
        snapshot = engine.snapshot()
        lo, hi = float(dataset.tg.min()), float(dataset.tg.max())
        result = execute_aggregate_query(
            snapshot, lo, hi, telemetry=engine.telemetry
        )
        assert result.blocks_stat_answered > 0
        assert (
            registry.counter("query.blocks_stat_answered").value
            == result.blocks_stat_answered
        )
        stats = execute_range_query(
            snapshot, lo + 0.4 * (hi - lo), lo + 0.6 * (hi - lo),
            telemetry=engine.telemetry,
        )
        assert registry.counter("query.blocks_skipped").value >= (
            stats.blocks_skipped
        )

    def test_executor_reads_blocks_not_files(self):
        """Columnar tables charge only the overlapping block span."""
        tg = np.sort(np.random.default_rng(2).uniform(0, 1000, 512))
        row = SSTable(tg.copy(), np.arange(512))
        cold = SSTable(tg.copy(), np.arange(512))
        assert cold.convert_to_columnar(32)
        lo, hi = float(tg[100]), float(tg[140])
        b0, b1 = cold.block_stats.overlapping(lo, hi)
        assert cold.block_stats.points_in(b0, b1) < len(row)
        assert row.count_in_range(lo, hi) == cold.count_in_range(lo, hi)


# -- block & storage primitives ------------------------------------------------


class TestBlockStats:
    def test_build_partitions_exactly(self):
        tg = np.sort(np.random.default_rng(3).uniform(0, 50, 100))
        stats = BlockStats.build(tg, np.arange(100), 8)
        assert stats.nblocks == 13
        assert int(stats.counts.sum()) == 100
        np.testing.assert_array_equal(stats.mins, tg[stats.starts])
        ends = np.append(stats.starts[1:], 100)
        np.testing.assert_array_equal(stats.maxs, tg[ends - 1])
        # Per-block sums cover the column (approximate: reduceat's
        # partial sums legitimately differ from one pairwise np.sum).
        assert np.isclose(float(stats.sums.sum()), float(tg.sum()))

    def test_single_block_when_size_exceeds_points(self):
        tg = np.array([1.0, 2.0, 3.0])
        stats = BlockStats.build(tg, np.arange(3), 64)
        assert stats.nblocks == 1
        assert stats.mins[0] == 1.0 and stats.maxs[0] == 3.0

    def test_overlapping_and_covered_spans(self):
        tg = np.arange(100, dtype=np.float64)
        stats = BlockStats.build(tg, np.arange(100), 10)
        assert stats.overlapping(-5.0, -1.0) == (0, 0)
        assert stats.overlapping(0.0, 99.0) == (0, 10)
        b0, b1 = stats.overlapping(25.0, 44.0)
        assert (b0, b1) == (2, 5)
        assert stats.points_in(b0, b1) == 30
        # Covered: only blocks entirely inside the window.
        c0, c1 = stats.covered(25.0, 44.0)
        assert (c0, c1) == (3, 4)

    def test_storage_round_trip_and_sum_identity(self):
        tg = np.sort(np.random.default_rng(4).uniform(0, 10, 77))
        ids = np.arange(77)
        row = make_storage(tg, ids, 0)
        cold = make_storage(tg, ids, 8)
        assert isinstance(row, RowStorage) and isinstance(
            cold, ColumnarStorage
        )
        assert row.block_size == 0 and cold.block_size == 8
        # The stored table-level sum is the exact row-path float.
        assert cold.sum_tg == float(tg.sum())
        np.testing.assert_array_equal(cold.block_tg(0), tg[:8])
        np.testing.assert_array_equal(cold.block_ids(9), ids[72:])

    def test_sstable_rejects_conflicting_constructor_args(self):
        tg = np.array([1.0, 2.0])
        with pytest.raises(EngineError):
            SSTable(tg, np.arange(2), storage=RowStorage(tg, np.arange(2)))

    def test_build_sstables_age_cutoff(self):
        tg = np.arange(100, dtype=np.float64)
        tables = build_sstables(
            tg, np.arange(100), 25, block_size=8, cold_max_tg=49.0
        )
        assert [t.is_columnar for t in tables] == [True, True, False, False]


class TestColdConfig:
    def test_with_cold_tier_round_trip(self):
        config = LsmConfig(64, 32).with_cold_tier(
            block_size=16, level=2, age=5.0
        )
        assert config.cold_tier
        assert config.cold_block_size == 16
        assert config.cold_level == 2
        assert config.cold_age == 5.0
        # Omitted knobs keep defaults.
        assert not LsmConfig(64, 32).cold_tier

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cold_block_size": 0},
            {"cold_level": -1},
            {"cold_age": 0.0},
            {"cold_age": -1.0},
        ],
    )
    def test_invalid_cold_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            LsmConfig(64, 32, cold_tier=True, **kwargs)
