"""Event-log semantics: the audit trail every experiment relies on."""

import numpy as np
import pytest

from repro import ConventionalEngine, LogNormalDelay, LsmConfig, SeparationEngine
from repro.workloads import generate_synthetic


@pytest.fixture(scope="module")
def driven_engines():
    dataset = generate_synthetic(
        30_000, dt=50, delay=LogNormalDelay(5.0, 2.0), seed=41
    )
    engines = {}
    for label, engine in (
        ("pi_c", ConventionalEngine(LsmConfig(256, 256))),
        ("pi_s", SeparationEngine(LsmConfig(256, 256, seq_capacity=128))),
    ):
        engine.ingest(dataset.tg)
        engine.flush_all()
        engines[label] = engine
    return engines


class TestEventLog:
    def test_arrival_indices_monotone(self, driven_engines):
        for engine in driven_engines.values():
            arrivals = [e.arrival_index for e in engine.stats.events]
            assert arrivals == sorted(arrivals)
            assert arrivals[-1] <= engine.ingested_points

    def test_event_writes_sum_to_disk_writes(self, driven_engines):
        for engine in driven_engines.values():
            total = sum(e.disk_writes for e in engine.stats.events)
            assert total == engine.stats.disk_writes

    def test_new_points_sum_to_user_points(self, driven_engines):
        for engine in driven_engines.values():
            new_total = sum(e.new_points for e in engine.stats.events)
            assert new_total == engine.stats.user_points

    def test_rewrites_match_write_counters(self, driven_engines):
        for engine in driven_engines.values():
            rewritten = sum(e.rewritten_points for e in engine.stats.events)
            counters = engine.stats.write_counts
            assert rewritten == int((counters - 1).clip(min=0).sum())

    def test_tables_written_positive(self, driven_engines):
        for engine in driven_engines.values():
            for event in engine.stats.events:
                assert event.tables_written >= 1
                assert event.rewritten_points >= 0

    def test_timeline_integrates_to_total_wa(self, driven_engines):
        for engine in driven_engines.values():
            edges, wa = engine.stats.wa_timeline(window_points=256)
            user = np.diff(np.concatenate(([0], np.minimum(edges, engine.stats.user_points))))
            reconstructed = float(np.nansum(wa * user))
            assert reconstructed == pytest.approx(engine.stats.disk_writes)

    def test_flush_events_never_rewrite(self, driven_engines):
        for engine in driven_engines.values():
            for event in engine.stats.events:
                if event.kind == "flush":
                    assert event.rewritten_points == 0
                    assert event.tables_rewritten == 0
