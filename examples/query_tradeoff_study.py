"""The read-side trade-off: separation helps RA, hurts recent-query seeks.

Section V-D's finding in one script: run the IoTDB-style two-level
engine (overlapping L1 flush files + background compaction) under both
policies on a disordered workload, issue monitoring-style recent-data
queries and analyst-style historical queries while writing, and compare
read amplification, files touched and modelled latency.

Run with:  python examples/query_tradeoff_study.py
"""

import repro
from repro.query import run_query_workload

MEMORY_BUDGET = 512
WINDOWS_MS = (500.0, 1000.0, 5000.0)

# A dt=10 workload: query windows span many points, so SSTable-size
# effects (the paper's seek argument) are visible.
delay = repro.LogNormalDelay(mu=5.0, sigma=2.0)
dataset = repro.generate_synthetic(60_000, dt=10.0, delay=delay, seed=4)
print(dataset.describe())

decision = repro.tune_separation_policy(
    delay, 10.0, MEMORY_BUDGET, sstable_size=MEMORY_BUDGET
)
n_seq = decision.seq_capacity or MEMORY_BUDGET // 2
print(f"recommended pi_s capacity: n_seq={n_seq}\n")


def engine_for(policy: str) -> repro.IoTDBStyleEngine:
    if policy == "pi_c":
        return repro.IoTDBStyleEngine(
            repro.LsmConfig(memory_budget=MEMORY_BUDGET), policy="conventional"
        )
    return repro.IoTDBStyleEngine(
        repro.LsmConfig(memory_budget=MEMORY_BUDGET, seq_capacity=n_seq),
        policy="separation",
    )


header = (
    f"{'mode':<12} {'window':>8} {'policy':>6} {'RA':>8} "
    f"{'files':>6} {'latency_ms':>11}"
)
print(header)
print("-" * len(header))
for mode in ("recent", "historical"):
    for window in WINDOWS_MS:
        for policy in ("pi_c", "pi_s"):
            engine = engine_for(policy)
            outcome = run_query_workload(
                engine, dataset, window=window, mode=mode, seed=7
            )
            print(
                f"{mode:<12} {window:>8.0f} {policy:>6} "
                f"{outcome.mean_read_amplification:>8.2f} "
                f"{outcome.mean_files_touched:>6.2f} "
                f"{outcome.mean_latency_ms:>11.3f}"
            )

print(
    "\nTakeaways (matching the paper's Figures 12-14):\n"
    "  * pi_s reads fewer useless points (lower RA) at every window;\n"
    "  * at the widest recent window pi_s touches MORE, smaller files,\n"
    "    so seek-dominated latency turns against it;\n"
    "  * on historical windows pi_c's overlapping L1 files hurt it and\n"
    "    the gap narrows or reverses."
)
