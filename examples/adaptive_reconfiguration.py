"""Adaptive reconfiguration under delay drift (the Figure 10 scenario).

Network conditions change: the delay distribution's spread shrinks over
the day (sigma stepping 2 -> 1).  A statically configured engine pays
for yesterday's conditions; ``pi_adaptive`` re-profiles the delays,
detects the drift with a KS test, re-runs Algorithm 1 and switches
policies live — keeping WA near the per-segment optimum.

Run with:  python examples/adaptive_reconfiguration.py
"""

import numpy as np

import repro
from repro.workloads import figure10_segments, generate_dynamic

MEMORY_BUDGET = 512
SSTABLE_SIZE = 512
POINTS_PER_SEGMENT = 80_000

# -- 1. A drifting workload: five sigma regimes -------------------------------
stream = generate_dynamic(
    figure10_segments(POINTS_PER_SEGMENT), dt=50.0, seed=1, name="drifting"
)
print(stream.describe())

# -- 2. Three strategies, same data --------------------------------------------
config = repro.LsmConfig(memory_budget=MEMORY_BUDGET, sstable_size=SSTABLE_SIZE)

static_conventional = repro.ConventionalEngine(config)
static_conventional.ingest(stream.tg)
static_conventional.flush_all()

static_half = repro.SeparationEngine(
    config.with_seq_capacity(MEMORY_BUDGET // 2)
)
static_half.ingest(stream.tg)
static_half.flush_all()

adaptive = repro.AdaptiveEngine(config, check_interval=8192)
adaptive.ingest(stream.tg, stream.ta)
adaptive.flush_all()

print(f"\nWA pi_c (static)      : {static_conventional.write_amplification:.3f}")
print(f"WA pi_s(n/2) (static) : {static_half.write_amplification:.3f}")
print(f"WA pi_adaptive        : {adaptive.write_amplification:.3f}")

print("\npolicy switches (arrival index -> policy):")
for index, policy in adaptive.switch_log:
    print(f"  {index:>8} -> {policy}")

# -- 3. WA over time ------------------------------------------------------------
from repro.experiments.asciiplot import line_plot
from repro.stats import sliding_mean

series = {}
for name, engine in (
    ("c pi_c", static_conventional),
    ("s pi_s(n/2)", static_half),
    ("a pi_adaptive", adaptive),
):
    _, wa = engine.stats.wa_timeline(window_points=512)
    series[name] = sliding_mean(np.nan_to_num(wa, nan=1.0), 64).tolist()

xs = (np.arange(len(series["c pi_c"])) + 1) * 512
print()
print(line_plot(xs.tolist(), series, x_label="points written", y_label="WA"))

best_static = min(
    static_conventional.write_amplification, static_half.write_amplification
)
assert adaptive.write_amplification <= best_static * 1.1
print("\nOK - pi_adaptive tracks (or beats) the best static policy.")
