"""IIoT fleet advisor: the paper's Section VI use case, end to end.

An industrial partner streams vehicle telemetry through a flaky network:
points normally arrive within a second, but during outages the device
buffers locally and re-sends in batches every ~50 s.  Should the
per-vendor IoTDB instance separate out-of-order data?

This example plays the database's role: it *streams* the workload
through a :class:`repro.DelayAnalyzer` exactly like the deployed
analyzer module would (bounded memory, no access to the full history),
profiles the delays, runs Algorithm 1, and sanity-checks the verdict on
the write-amplification simulator.

Run with:  python examples/iiot_fleet_advisor.py
"""


import repro
from repro.stats import autocorrelation

MEMORY_BUDGET = 512
SSTABLE_SIZE = 512

# -- 1. The telemetry stream (simulated stand-in for dataset H) ---------------
stream = repro.generate_vehicle_h(n_points=150_000, seed=6)
print(stream.describe())

acf = autocorrelation(stream.delays, max_lag=5)
print(
    f"delay autocorrelation at lag 1: {acf.acf[1]:.2f} "
    f"(band +/-{acf.band:.3f}) -> delays are "
    f"{'NOT ' if not acf.is_independent() else ''}independent"
)

# -- 2. Stream it through the analyzer, chunk by chunk ------------------------
analyzer = repro.DelayAnalyzer(
    memory_budget=MEMORY_BUDGET, window=8192, sstable_size=SSTABLE_SIZE
)
for chunk in stream.chunks(10_000):
    analyzer.observe(chunk.tg, chunk.ta)

profile = analyzer.profile()
print("delay profile:", profile.describe())
print("delay summary:", analyzer.delay_summary().format(unit="ms"))

decision = analyzer.recommend()
print("verdict:", decision.describe())

# -- 3. Validate against the simulator ----------------------------------------
results = {}
for label, policy, n_seq in (
    ("pi_c", "conventional", None),
    ("pi_s(n*)", "separation", decision.seq_capacity or MEMORY_BUDGET // 2),
):
    config = repro.LsmConfig(
        memory_budget=MEMORY_BUDGET,
        sstable_size=SSTABLE_SIZE,
        seq_capacity=n_seq,
    )
    engine = (
        repro.ConventionalEngine(config)
        if policy == "conventional"
        else repro.SeparationEngine(config)
    )
    engine.ingest(stream.tg)
    engine.flush_all()
    results[label] = engine.write_amplification
    print(f"measured WA {label}: {engine.write_amplification:.4f}")

# On this nearly ordered workload (batches preserve generation order),
# separation buys nothing — the analyzer should keep pi_c, matching the
# paper's Figure 16(b).
best = min(results, key=results.get)
print(f"measured winner: {best}")
assert decision.policy == "conventional"
print("OK - the analyzer keeps pi_c for the vehicle fleet, as in the paper.")
