"""Quickstart: should this workload separate its out-of-order data?

The paper's decision problem in ~40 lines: describe a write workload by
its delay distribution and generation interval, run Algorithm 1 to pick
``pi_c`` (one MemTable) or ``pi_s(n_seq)`` (separated MemTables), then
check the recommendation against the LSM simulator's measured write
amplification.

Run with:  python examples/quickstart.py
"""

import repro

# -- 1. Describe the workload ------------------------------------------------
# Points generated every 50 ms; transmission delays lognormal(mu=5,
# sigma=2) — the Figure 7 workload, where disorder is severe.
DT_MS = 50.0
MEMORY_BUDGET = 512  # points that fit in MemTables
SSTABLE_SIZE = 512

delay = repro.LogNormalDelay(mu=5.0, sigma=2.0)

# -- 2. Ask the model which policy minimises write amplification --------------
decision = repro.tune_separation_policy(
    delay, DT_MS, MEMORY_BUDGET, sstable_size=SSTABLE_SIZE
)
print("Algorithm 1 says:", decision.describe())

# -- 3. Validate on the simulator ---------------------------------------------
dataset = repro.generate_synthetic(200_000, dt=DT_MS, delay=delay, seed=0)
print(f"workload: {dataset.describe()}")

conventional = repro.ConventionalEngine(
    repro.LsmConfig(memory_budget=MEMORY_BUDGET, sstable_size=SSTABLE_SIZE)
)
conventional.ingest(dataset.tg)
conventional.flush_all()

separated = repro.SeparationEngine(
    repro.LsmConfig(
        memory_budget=MEMORY_BUDGET,
        sstable_size=SSTABLE_SIZE,
        seq_capacity=decision.seq_capacity or MEMORY_BUDGET // 2,
    )
)
separated.ingest(dataset.tg)
separated.flush_all()

print(f"measured WA under pi_c              : {conventional.write_amplification:.3f}")
print(
    f"measured WA under pi_s(n_seq={decision.seq_capacity}) : "
    f"{separated.write_amplification:.3f}"
)

winner = (
    "pi_s"
    if separated.write_amplification < conventional.write_amplification
    else "pi_c"
)
recommended = "pi_s" if decision.policy == "separation" else "pi_c"
print(f"measured winner: {winner}; recommended: {recommended}")
assert winner == recommended, "the model should pick the measured winner here"

# -- 4. Query it with the paper's SQL dialect ----------------------------------
from repro.query import execute_sql

snapshot = separated.snapshot()
max_time = snapshot.max_tg
recent = execute_sql(
    snapshot, f"SELECT COUNT(*) FROM TS WHERE time > {max_time - 5000}"
)
print(f"points in the last 5000 ms: {recent}")
print("OK - the recommendation matches the simulator.")
