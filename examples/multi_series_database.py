"""Operating a multi-series database: per-series buffering decisions.

One IoTDB instance stores thousands of series (Section VI); disorder is
widespread but uneven across them.  This example runs a heterogeneous
fleet through :class:`repro.TimeSeriesDatabase`: every series streams
through its own analyzer, a retune pass decides — per series — whether
to separate, and the fleet report shows where the write amplification
went.

Run with:  python examples/multi_series_database.py
"""

import repro
from repro.workloads import generate_fleet

N_SERIES = 16
POINTS = 20_000

fleet = generate_fleet(
    n_series=N_SERIES,
    points_per_series=POINTS,
    disordered_fraction=0.4,
    seed=11,
)

db = repro.TimeSeriesDatabase(
    memory_budget_per_series=256, sstable_size=256, auto_tune=True
)

# Phase 1: stream the first third of every series (observation window).
warmup = POINTS // 3
for name, series in fleet.items():
    head = series.head(warmup)
    db.write(name, head.tg, head.ta)

# Phase 2: one retune pass — each series decides from its own profile.
switched = db.retune()
print(f"retune switched {len(switched)}/{N_SERIES} series:")
for name, policy in sorted(switched.items()):
    print(f"  {name} -> {policy}")

# Phase 3: stream the rest.
for name, series in fleet.items():
    db.write(name, series.tg[warmup:], series.ta[warmup:])
db.flush_all()

# The fleet dashboard.
report = db.report()
print(
    f"\nfleet: {report.series_count} series, "
    f"{report.total_points} points, WA={report.write_amplification:.3f}, "
    f"{report.disordered_fraction:.0%} disordered "
    "(paper: 'more than one-third')"
)
print(f"\n{'series':<14} {'policy':<18} {'WA':>7}")
for name, policy, wa in report.rows:
    print(f"{name:<14} {policy:<18} {wa:>7.3f}")

separated = [row for row in report.rows if row[1].startswith("pi_s")]
print(
    f"\n{len(separated)} series separated; every one of them is in the "
    "disordered cohort — the clean series keep the cheaper pi_c, which a "
    "single instance-wide policy cannot do."
)
