"""Capacity planning with the analytical models alone — no simulation.

Because Eqs. 1-5 are closed computations over the delay law, a whole
(budget x disorder) decision map costs seconds: for each memory budget
and delay scale, which policy wins, by how much, and what C_seq split
should be provisioned?  This is the kind of what-if sweep a deployment
engineer runs before sizing MemTables — impossible to do by brute-force
ingestion at every grid point.

Run with:  python examples/capacity_planning.py
"""

import repro

DT_MS = 50.0
BUDGETS = (128, 256, 512, 1024)
SIGMAS = (1.0, 1.25, 1.5, 1.75, 2.0)
MU = 5.0

print(
    f"Decision map for lognormal(mu={MU}, sigma) delays at dt={DT_MS:g} ms\n"
    "cell: winner (predicted WA, recommended n_seq if pi_s)\n"
)
header = f"{'budget':>8} |" + "".join(f"  sigma={s:<12}" for s in SIGMAS)
print(header)
print("-" * len(header))

for budget in BUDGETS:
    cells = []
    for sigma in SIGMAS:
        decision = repro.tune_separation_policy(
            repro.LogNormalDelay(MU, sigma),
            DT_MS,
            budget,
            sstable_size=budget,
        )
        if decision.policy == "separation":
            cell = f"pi_s({decision.predicted_wa:.2f},n={decision.seq_capacity})"
        else:
            cell = f"pi_c({decision.predicted_wa:.2f})"
        cells.append(f"  {cell:<18}")
    print(f"{budget:>8} |" + "".join(cells))

print(
    "\nReading the map:\n"
    "  * mild disorder (small sigma) -> pi_c: separation's phase overhead\n"
    "    outweighs its batching benefit;\n"
    "  * severe disorder -> pi_s with a tuned (not 1:1!) C_seq split;\n"
    "  * larger budgets damp WA under both policies but move the\n"
    "    crossover, which is why a fixed factory default mis-serves\n"
    "    some deployments — the paper's core practical point."
)
