"""Benchmark: ablation A4 — drift-detector sensitivity."""

from repro.experiments.ablation_drift import run

from conftest import run_once


def test_ablation_drift(benchmark, bench_scale, emit):
    result = run_once(benchmark, run, scale=bench_scale)
    emit(result)
    table = result.tables[0]
    insensitive, default, sensitive = table.rows
    # A detector that cannot fire retunes at most once (the initial fit).
    assert insensitive[2] <= 1
    # Higher sensitivity means at least as many retunes.
    assert sensitive[2] >= default[2]
    # The default setting must not lose to the insensitive one.
    assert default[1] <= insensitive[1] + 0.05
