"""Benchmark: regenerate Figure 5 (subsequent points vs buffer size)."""

import numpy as np

from repro.experiments.fig05_subsequent import run

from conftest import run_once


def test_fig05(benchmark, bench_scale, emit):
    result = run_once(benchmark, run, scale=bench_scale)
    emit(result)
    for table in result.tables:
        measured = np.asarray(table.column("experiment"), dtype=float)
        modelled = np.asarray(table.column("zeta(n)"), dtype=float)
        # Both grow with the buffer size...
        assert measured[-1] > measured[0]
        assert np.all(np.diff(modelled) > 0)
        # ...and the model tracks the experiment (paper: slight
        # under-estimate from the i.i.d./constant-gap assumptions).
        assert np.all(np.abs(measured - modelled) <= 0.35 * measured + 5.0)
    # The larger sigma curve dominates the smaller one.
    low = np.asarray(result.tables[0].column("experiment"), dtype=float)
    high = np.asarray(result.tables[1].column("experiment"), dtype=float)
    assert np.all(high >= low)
