"""Benchmark: regenerate Figure 10 (adaptive policy under drift)."""

from repro.experiments.fig10_adaptive import run

from conftest import run_once


def test_fig10(benchmark, bench_scale, emit):
    result = run_once(benchmark, run, scale=bench_scale)
    emit(result)
    overall = result.table("Overall WA per strategy")
    wa = {row[0]: float(row[1]) for row in overall.rows}
    # The tuner reduces WA relative to always-pi_c and tracks (or beats,
    # via capacity tuning) the static IoTDB 1:1 split.
    assert wa["pi_adaptive"] < wa["pi_c"]
    assert wa["pi_adaptive"] <= wa["pi_s(n/2)"] * 1.1
    switches = result.table("pi_adaptive policy switches")
    # The detector reacted to the drifting sigma at least once.
    assert switches.rows[0][0] != "-"
