"""Benchmark: fleet case study — per-series tuning at deployment scale."""

from repro.experiments.fleet_casestudy import run

from conftest import run_once


def test_fleet(benchmark, bench_scale, emit):
    result = run_once(benchmark, run, scale=max(bench_scale, 0.5))
    emit(result)
    outcome = result.table("Fleet-wide outcome")
    static_row, tuned_row, allocated_row = outcome.rows
    # Per-series tuning must not lose to the static default...
    assert tuned_row[1] <= static_row[1] + 1e-9
    # ...and should separate at least one disordered series.
    assert tuned_row[2] >= 1
    # The disordered cohort matches Section VI's "more than one-third".
    assert tuned_row[3] >= 0.25 * (tuned_row[3] + 1)
    # Re-allocating the same total memory by marginal gain does at least
    # as well as the uniform split.
    assert allocated_row[1] <= tuned_row[1] * 1.02
