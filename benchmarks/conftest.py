"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper figure/table via its experiment
module, prints the reproduced rows (bypassing capture so they land in
redirected output), and saves a copy under ``benchmarks/results/``.

``REPRO_BENCH_SCALE`` scales the dataset sizes (default 0.25; the paper
itself used ~10M-point datasets = scale ~100).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


@pytest.fixture()
def emit(capfd):
    """Print an ExperimentResult through captured stdout and save it."""

    def _emit(result) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.render()
        (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
        with capfd.disabled():
            print()
            print(text)

    return _emit


def run_once(benchmark, func, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, kwargs=kwargs, rounds=1, iterations=1)
