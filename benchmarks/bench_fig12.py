"""Benchmark: regenerate Figure 12 (read amplification, recent queries)."""

import numpy as np

from repro.experiments.fig12_read_amplification import run

from conftest import run_once


def test_fig12(benchmark, bench_scale, emit):
    result = run_once(benchmark, run, scale=bench_scale)
    emit(result)
    grid = result.table("Mean read amplification per dataset/window")
    ra_c = np.asarray(grid.column("pi_c"), dtype=float)
    ra_s = np.asarray(grid.column("pi_s"), dtype=float)
    ok = ~(np.isnan(ra_c) | np.isnan(ra_s))
    # Paper finding 1: pi_s reads fewer useless points than pi_c.
    assert np.mean(ra_s[ok] <= ra_c[ok]) >= 0.8
    # Paper finding 2: longer windows -> lower read amplification.
    trend = result.table("Read amplification vs window")
    means = np.asarray(trend.column("mean RA"), dtype=float)
    assert means[0] > means[-1]
