"""Benchmark: ablation A7 — the measured policy crossover."""

from repro.experiments.ablation_crossover import run

from conftest import run_once


def test_ablation_crossover(benchmark, bench_scale, emit):
    result = run_once(benchmark, run, scale=max(bench_scale, 0.5))
    emit(result)
    table = result.tables[0]
    rows = table.rows
    by_sigma = {row[0]: row for row in rows}
    # The Figure 2 regime: near-ordered workloads keep pi_c.
    assert by_sigma[0.5][5] == "pi_c"
    # The Figure 7 regime: heavy disorder flips to pi_s.
    assert by_sigma[2.0][5] == "pi_s"
    # The crossover is monotone: once pi_s wins it keeps winning.
    winners = [row[5] for row in rows]
    first_pi_s = winners.index("pi_s")
    assert all(w == "pi_s" for w in winners[first_pi_s:])
    # Predictions match measurements away from the tie boundary
    # (allow one disagreement at the crossover itself).
    disagreements = sum(1 for row in rows if row[5] != row[6])
    assert disagreements <= 1
