"""Benchmark: regenerate Figure 14 (historical-query latency) + Fig. 15."""

import numpy as np

from repro.experiments.fig14_historical_latency import run

from conftest import run_once


def test_fig14(benchmark, bench_scale, emit):
    result = run_once(benchmark, run, scale=bench_scale)
    emit(result)
    grid = result.table("Mean modelled latency")
    lat_c = np.asarray(grid.column("pi_c"), dtype=float)
    lat_s = np.asarray(grid.column("pi_s"), dtype=float)
    names = grid.column("dataset")
    # Paper: pi_s does relatively better here than on recent queries —
    # on high-disorder datasets it beats pi_c (M6/M11/M12 in the paper).
    high_disorder = [
        s < c for name, c, s in zip(names, lat_c, lat_s)
        if name in ("M6", "M11", "M12")
    ]
    assert high_disorder and np.mean(high_disorder) >= 0.5
    # Figure 15's overlap picture was rendered.
    assert any("SSTables overlap the" in chart for chart in result.charts)
