"""Benchmark: ablation A5 — leveling vs tiering vs separation."""

from repro.experiments.ablation_tiering import run

from conftest import run_once


def test_ablation_tiering(benchmark, bench_scale, emit):
    result = run_once(benchmark, run, scale=max(bench_scale, 0.5))
    emit(result)
    rows = result.tables[0].rows
    wa = {row[0].split("(")[0].strip(): float(row[1]) for row in rows}
    files = {row[0].split("(")[0].strip(): float(row[2]) for row in rows}
    # Tiering cuts WA relative to pi_c leveling...
    assert wa["tiered"] < wa["pi_c"]
    # ...but the tuned pi_s does at least as well on this workload...
    assert wa["pi_s"] <= wa["tiered"] * 1.1
    # ...while tiering pays the highest read cost of the three.
    assert files["tiered"] >= max(files["pi_c"], files["pi_s"]) - 1e-9
