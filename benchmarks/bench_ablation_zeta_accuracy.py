"""Benchmark: ablation A2 — zeta(n) numerics."""

from repro.experiments.ablation_zeta_accuracy import run

from conftest import run_once


def test_ablation_zeta(benchmark, emit):
    result = run_once(benchmark, run)
    emit(result)
    table = result.tables[0]
    drifts = table.column("drift vs reference %")
    times = table.column("eval time (ms)")
    # Default settings stay within 1% of the tight reference...
    assert float(drifts[1]) < 1.0
    # ...at a fraction of its cost.
    assert float(times[1]) < float(times[0])
