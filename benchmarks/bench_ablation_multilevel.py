"""Benchmark: ablation A3 — structural vs workload-aware WA."""

from repro.experiments.ablation_multilevel import run

from conftest import run_once


def test_ablation_multilevel(benchmark, bench_scale, emit):
    result = run_once(benchmark, run, scale=bench_scale)
    emit(result)
    table = result.tables[0]
    mild, severe = table.rows
    # pi_c reacts strongly to disorder; the T-leveled engine much less —
    # which is why the O(T*L/B) bound cannot rank the policies.
    swing_pi_c = severe[1] / mild[1]
    swing_multi = severe[3] / mild[3]
    assert swing_pi_c > 2.0 * swing_multi
