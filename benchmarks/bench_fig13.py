"""Benchmark: regenerate Figure 13 (recent-query latency)."""


from repro.experiments.fig13_recent_latency import run

from conftest import run_once


def test_fig13(benchmark, bench_scale, emit):
    result = run_once(benchmark, run, scale=bench_scale)
    emit(result)
    grid = result.table("Mean modelled latency")
    rows = grid.rows
    # The seek trade-off the paper describes must be visible where the
    # window spans many small SSTables: on the dt=10 datasets at the
    # 5000 ms window (500 points) pi_s touches more files than pi_c.
    dt10 = [r for r in rows if r[0] in ("M7", "M8", "M9", "M10", "M11", "M12")
            and r[1] == 5000.0]
    assert dt10, "expected dt=10 rows at the 5000 ms window"
    more_files = sum(1 for r in dt10 if r[5] >= r[4])
    assert more_files >= len(dt10) - 1
    slower = sum(1 for r in dt10 if r[3] >= r[2])
    assert slower >= len(dt10) // 2
    # Latency does not shrink as the window grows (per dataset/policy).
    for name in {r[0] for r in rows}:
        series = [r[2] for r in rows if r[0] == name]
        assert series[-1] >= series[0] - 1e-9
