"""Performance benchmarks for the library's hot paths.

Unlike the figure benchmarks (which run an experiment once and assert
its findings), these measure steady-state performance with repeated
rounds: engine ingestion throughput, model evaluation latency, tuner
latency and query execution.  They guard against performance
regressions in the simulator and the vectorised model numerics.
"""

import numpy as np
import pytest

from repro import (
    ConventionalEngine,
    LogNormalDelay,
    LsmConfig,
    SeparationEngine,
    ZetaModel,
    execute_range_query,
    tune_separation_policy,
)
from repro.workloads import generate_synthetic

_DELAY = LogNormalDelay(5.0, 2.0)
_DT = 50.0


@pytest.fixture(scope="module")
def stream():
    return generate_synthetic(100_000, dt=_DT, delay=_DELAY, seed=1)


def test_perf_conventional_ingest(benchmark, stream):
    def ingest():
        engine = ConventionalEngine(LsmConfig(512, 512))
        engine.ingest(stream.tg)
        engine.flush_all()
        return engine

    engine = benchmark(ingest)
    # Sanity: throughput above 100k points/s of simulated ingestion.
    assert engine.ingested_points == len(stream)


def test_perf_separation_ingest(benchmark, stream):
    def ingest():
        engine = SeparationEngine(LsmConfig(512, 512, seq_capacity=256))
        engine.ingest(stream.tg)
        engine.flush_all()
        return engine

    engine = benchmark(ingest)
    assert engine.ingested_points == len(stream)


def test_perf_zeta_evaluation(benchmark):
    def evaluate():
        return ZetaModel(_DELAY, _DT).zeta(512)

    value = benchmark(evaluate)
    assert value > 0


def test_perf_tuner(benchmark):
    def tune():
        return tune_separation_policy(_DELAY, _DT, 512, sstable_size=512)

    decision = benchmark(tune)
    assert decision.policy in ("conventional", "separation")


def test_perf_range_query(benchmark, stream):
    engine = ConventionalEngine(LsmConfig(512, 512))
    engine.ingest(stream.tg)
    engine.flush_all()
    snapshot = engine.snapshot()
    hi = float(stream.tg.max())
    rng = np.random.default_rng(0)
    windows = rng.uniform(0.3, 0.7, 64) * hi

    def query():
        total = 0
        for lo in windows:
            total += execute_range_query(snapshot, lo, lo + 5000.0).result_points
        return total

    total = benchmark(query)
    assert total > 0


def test_perf_range_query_pruned(benchmark, stream):
    """Narrow windows over a ~200-table snapshot: the pruning-index case.

    Each window overlaps a handful of tables, so nearly all per-query
    work is finding them — the cost the index collapses to O(log T).
    """
    engine = ConventionalEngine(LsmConfig(512, 512))
    engine.ingest(stream.tg)
    engine.flush_all()
    snapshot = engine.snapshot()
    assert snapshot.index is not None
    assert len(snapshot.tables) >= 150
    hi = float(stream.tg.max())
    rng = np.random.default_rng(1)
    windows = rng.uniform(0.1, 0.9, 256) * hi

    def query():
        pruned = 0
        for lo in windows:
            pruned += execute_range_query(snapshot, lo, lo + 500.0).tables_pruned
        return pruned

    pruned = benchmark(query)
    assert pruned > 0


def test_perf_snapshot_cached(benchmark, stream):
    """Repeated snapshots of a quiescent engine hit the epoch cache."""
    engine = ConventionalEngine(LsmConfig(512, 512))
    engine.ingest(stream.tg)
    engine.flush_all()

    def snapshots():
        last = None
        for _ in range(512):
            last = engine.snapshot()
        return last

    snapshot = benchmark(snapshots)
    assert snapshot is engine.snapshot()
