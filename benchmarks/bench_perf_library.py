"""Performance benchmarks for the library's hot paths.

Unlike the figure benchmarks (which run an experiment once and assert
its findings), these measure steady-state performance with repeated
rounds: engine ingestion throughput, model evaluation latency, tuner
latency and query execution.  They guard against performance
regressions in the simulator and the vectorised model numerics.
"""

import time

import numpy as np
import pytest

from repro import (
    ConventionalEngine,
    LogNormalDelay,
    LsmConfig,
    SeparationEngine,
    ZetaModel,
    execute_aggregate_query,
    execute_range_query,
    tune_separation_policy,
)
from repro.workloads import generate_synthetic

_DELAY = LogNormalDelay(5.0, 2.0)
_DT = 50.0
#: Points per simulated append for the bursty-ingest stability benchmarks.
_BURST = 512


@pytest.fixture(scope="module")
def stream():
    return generate_synthetic(100_000, dt=_DT, delay=_DELAY, seed=1)


@pytest.fixture(scope="module")
def cold_pair():
    """A row engine and a cold-converted twin over the same 2M-point stream.

    Large SSTables (32768 points) make the row path's per-table
    ``np.sum`` the dominant aggregation cost — the work the cold tier's
    block statistics eliminate.
    """
    cold_stream = generate_synthetic(2_000_000, dt=_DT, delay=_DELAY, seed=1)
    row_engine = ConventionalEngine(LsmConfig(32768, 32768))
    row_engine.ingest(cold_stream.tg)
    row_engine.flush_all()
    cold_engine = ConventionalEngine(
        LsmConfig(32768, 32768, cold_block_size=256).with_telemetry()
    )
    cold_engine.ingest(cold_stream.tg)
    cold_engine.flush_all()
    converted = cold_engine.convert_cold()
    assert converted == len(cold_engine.snapshot().tables)
    return cold_stream, row_engine, cold_engine


def test_perf_conventional_ingest(benchmark, stream):
    def ingest():
        engine = ConventionalEngine(LsmConfig(512, 512))
        engine.ingest(stream.tg)
        engine.flush_all()
        return engine

    engine = benchmark(ingest)
    # Sanity: throughput above 100k points/s of simulated ingestion.
    assert engine.ingested_points == len(stream)


def test_perf_separation_ingest(benchmark, stream):
    def ingest():
        engine = SeparationEngine(LsmConfig(512, 512, seq_capacity=256))
        engine.ingest(stream.tg)
        engine.flush_all()
        return engine

    engine = benchmark(ingest)
    assert engine.ingested_points == len(stream)


def test_perf_zeta_evaluation(benchmark):
    def evaluate():
        return ZetaModel(_DELAY, _DT).zeta(512)

    value = benchmark(evaluate)
    assert value > 0


def test_perf_tuner(benchmark):
    def tune():
        return tune_separation_policy(_DELAY, _DT, 512, sstable_size=512)

    decision = benchmark(tune)
    assert decision.policy in ("conventional", "separation")


def test_perf_range_query(benchmark, stream):
    engine = ConventionalEngine(LsmConfig(512, 512))
    engine.ingest(stream.tg)
    engine.flush_all()
    snapshot = engine.snapshot()
    hi = float(stream.tg.max())
    rng = np.random.default_rng(0)
    windows = rng.uniform(0.3, 0.7, 64) * hi

    def query():
        total = 0
        for lo in windows:
            total += execute_range_query(snapshot, lo, lo + 5000.0).result_points
        return total

    total = benchmark(query)
    assert total > 0


def test_perf_range_query_pruned(benchmark, stream):
    """Narrow windows over a ~200-table snapshot: the pruning-index case.

    Each window overlaps a handful of tables, so nearly all per-query
    work is finding them — the cost the index collapses to O(log T).
    """
    engine = ConventionalEngine(LsmConfig(512, 512))
    engine.ingest(stream.tg)
    engine.flush_all()
    snapshot = engine.snapshot()
    assert snapshot.index is not None
    assert len(snapshot.tables) >= 150
    hi = float(stream.tg.max())
    rng = np.random.default_rng(1)
    windows = rng.uniform(0.1, 0.9, 256) * hi

    def query():
        pruned = 0
        for lo in windows:
            pruned += execute_range_query(snapshot, lo, lo + 500.0).tables_pruned
        return pruned

    pruned = benchmark(query)
    assert pruned > 0


def test_perf_ingest_latency_percentiles(benchmark, stream):
    """Tail latency of bursty ingest under the incremental scheduler.

    Ingests the stream in ``_BURST``-point appends through a
    scheduler-paced engine, records per-append wall time, and reports
    p50/p99/p99.9 (microseconds) via ``extra_info`` so the trajectory
    file carries the tail shape, not just the total.
    """
    tg = stream.tg
    config = LsmConfig(512, 512).with_stability(
        compaction_scheduler=True,
        compaction_work_unit=128,
        compaction_tokens_per_point=4.0,
        compaction_burst=2048,
    )
    starts = range(0, tg.size, _BURST)

    def ingest_bursts():
        engine = ConventionalEngine(config)
        latencies = np.empty(len(starts))
        for i, start in enumerate(starts):
            began = time.perf_counter()
            engine.ingest(tg[start : start + _BURST])
            latencies[i] = time.perf_counter() - began
        engine.flush_all()
        return engine, latencies

    engine, latencies = benchmark(ingest_bursts)
    p50, p99, p999 = np.percentile(latencies * 1e6, [50.0, 99.0, 99.9])
    benchmark.extra_info["p50_us"] = round(float(p50), 3)
    benchmark.extra_info["p99_us"] = round(float(p99), 3)
    benchmark.extra_info["p999_us"] = round(float(p999), 3)
    assert engine.ingested_points == tg.size
    assert 0.0 < p50 <= p99 <= p999


def test_perf_bursty_ingest_stall(benchmark, stream):
    """The headline stability claim: the scheduler bounds append stalls.

    Runs the same bursty workload through a stop-the-world baseline and
    a scheduler-paced engine, comparing the worst landing work executed
    inside any single append (a deterministic wall-clock proxy:
    ``disk_writes`` per burst for the baseline versus the scheduler's
    ``max_batch_work_points``).  The paced engine must cut the worst
    stall by at least 5x while reaching the identical final state.
    """
    tg = stream.tg
    paced_config = LsmConfig(512, 512).with_stability(
        compaction_scheduler=True,
        compaction_work_unit=128,
        compaction_tokens_per_point=2.0,
        compaction_burst=1024,
        # Keep admission healthy: this benchmark isolates pacing, so the
        # backlog is allowed to grow and drains in the final flush.
        backpressure_throttle=10**9,
        backpressure_shed=10**9,
    )
    starts = range(0, tg.size, _BURST)

    def run_pair():
        baseline = ConventionalEngine(LsmConfig(512, 512))
        baseline_stall = 0
        seen = 0
        for start in starts:
            baseline.ingest(tg[start : start + _BURST])
            events = baseline.stats.events
            burst_work = sum(e.disk_writes for e in events[seen:])
            seen = len(events)
            baseline_stall = max(baseline_stall, burst_work)

        paced = ConventionalEngine(paced_config)
        for start in starts:
            paced.ingest(tg[start : start + _BURST])
        paced_stall = paced.scheduler.max_batch_work_points

        baseline.flush_all()
        paced.flush_all()
        return baseline, paced, baseline_stall, paced_stall

    baseline, paced, baseline_stall, paced_stall = benchmark(run_pair)
    benchmark.extra_info["baseline_stall_points"] = baseline_stall
    benchmark.extra_info["paced_stall_points"] = paced_stall
    assert paced_stall > 0
    assert baseline_stall >= 5 * paced_stall, (
        f"scheduler stall {paced_stall} not 5x below baseline "
        f"{baseline_stall}"
    )
    # Pacing must not change what lands: identical accounting and state.
    assert baseline.ingested_points == paced.ingested_points == tg.size
    assert baseline.write_amplification == paced.write_amplification
    assert np.array_equal(
        baseline.stats.write_counts, paced.stats.write_counts
    )
    baseline.verify()
    paced.verify()


def test_perf_agg_cold(benchmark, cold_pair):
    """Metadata-only aggregation over the cold tier versus row scans.

    Wide windows (80% of the stream span) cover most tables, so the
    row path pays one ``np.sum`` per covered table while the cold path
    answers each from its stored block statistics.  The cold pass must
    be at least 5x faster, produce bitwise-identical aggregates, and
    actually exercise the statistics fast path (the telemetry counter
    ``query.blocks_stat_answered`` advances).
    """
    cold_stream, row_engine, cold_engine = cold_pair
    row_snap = row_engine.snapshot()
    cold_snap = cold_engine.snapshot()
    lo_all, hi_all = float(cold_stream.tg.min()), float(cold_stream.tg.max())
    span = hi_all - lo_all
    rng = np.random.default_rng(0)
    windows = [
        (lo, lo + 0.8 * span)
        for lo in rng.uniform(lo_all, hi_all - 0.8 * span, 32)
    ]

    def agg_pair():
        began = time.perf_counter()
        row_results = [
            execute_aggregate_query(row_snap, lo, hi) for lo, hi in windows
        ]
        row_s = time.perf_counter() - began
        began = time.perf_counter()
        cold_results = [
            execute_aggregate_query(
                cold_snap, lo, hi, telemetry=cold_engine.telemetry
            )
            for lo, hi in windows
        ]
        cold_s = time.perf_counter() - began
        return row_results, cold_results, row_s, cold_s

    row_results, cold_results, row_s, cold_s = benchmark(agg_pair)
    benchmark.extra_info["row_ms"] = round(row_s * 1e3, 3)
    benchmark.extra_info["cold_ms"] = round(cold_s * 1e3, 3)
    benchmark.extra_info["speedup"] = round(row_s / cold_s, 2)
    assert row_s >= 5 * cold_s, (
        f"cold aggregation {cold_s * 1e3:.2f}ms not 5x below row "
        f"{row_s * 1e3:.2f}ms"
    )
    for r, c in zip(row_results, cold_results):
        assert r.count == c.count
        assert r.total == c.total
        assert r.minimum == c.minimum
        assert r.maximum == c.maximum
        assert c.blocks_stat_answered > 0
    registry = cold_engine.telemetry.registry
    assert registry.counter("query.blocks_stat_answered").value > 0


def test_perf_cold_scan(benchmark, cold_pair):
    """Narrow range queries over the cold tier: block-granular reads.

    Results are identical to the row twin, but the columnar tables'
    per-block zone maps bound the read to the overlapping block span —
    disk points read (and hence read amplification) must drop.
    """
    cold_stream, row_engine, cold_engine = cold_pair
    row_snap = row_engine.snapshot()
    cold_snap = cold_engine.snapshot()
    hi_all = float(cold_stream.tg.max())
    rng = np.random.default_rng(2)
    windows = rng.uniform(0.1, 0.9, 64) * hi_all

    def scan():
        disk_read = 0
        skipped = 0
        results = 0
        for lo in windows:
            stats = execute_range_query(cold_snap, lo, lo + 5000.0)
            disk_read += stats.disk_points_read
            skipped += stats.blocks_skipped
            results += stats.result_points
        return disk_read, skipped, results

    cold_disk, cold_skipped, cold_results = benchmark(scan)
    row_disk = 0
    row_results = 0
    for lo in windows:
        stats = execute_range_query(row_snap, lo, lo + 5000.0)
        row_disk += stats.disk_points_read
        row_results += stats.result_points
    benchmark.extra_info["row_disk_points"] = row_disk
    benchmark.extra_info["cold_disk_points"] = cold_disk
    benchmark.extra_info["blocks_skipped"] = cold_skipped
    assert cold_results == row_results > 0
    assert cold_skipped > 0
    # Whole-file reads versus block spans: at least 10x fewer points.
    assert cold_disk * 10 <= row_disk


def test_perf_snapshot_cached(benchmark, stream):
    """Repeated snapshots of a quiescent engine hit the epoch cache."""
    engine = ConventionalEngine(LsmConfig(512, 512))
    engine.ingest(stream.tg)
    engine.flush_all()

    def snapshots():
        last = None
        for _ in range(512):
            last = engine.snapshot()
        return last

    snapshot = benchmark(snapshots)
    assert snapshot is engine.snapshot()


def _fleet_rounds(fleet_data, chunk=1000):
    """Lock-step ingest rounds over a heterogeneous fleet workload."""
    longest = max(len(ds) for ds in fleet_data.values())
    rounds = []
    for pos in range(0, longest, chunk):
        batch = [
            (name, ds.tg[pos : pos + chunk], ds.ta[pos : pos + chunk])
            for name, ds in fleet_data.items()
            if pos < len(ds)
        ]
        rounds.append(batch)
    return rounds


def test_perf_sharded_ingest(benchmark):
    """The sharded front-end: route, split and group-commit a fleet batch.

    Measures the serving tier's batched ingest path (routing + per-shard
    write loop) against the raw single-database path, so routing overhead
    regressions surface here.
    """
    from repro.serving import ShardedDatabase
    from repro.workloads import generate_fleet

    fleet_data = generate_fleet(
        n_series=8, points_per_series=12_500, disordered_fraction=0.5, seed=7
    )
    rounds = _fleet_rounds(fleet_data, chunk=2500)

    def ingest():
        fleet = ShardedDatabase(
            n_shards=4, memory_budget_per_series=512, sstable_size=512
        )
        total = 0
        for batch in rounds:
            total += fleet.ingest_batch(batch)
        fleet.flush_all()
        return fleet, total

    fleet, total = benchmark(ingest)
    assert total == sum(len(ds) for ds in fleet_data.values())
    assert len(fleet) == len(fleet_data)


def test_perf_arbiter_rebalance(benchmark):
    """Online arbitration: decision latency, and it must beat equal split.

    Runs the same skewed fleet (hot disordered cohort at 4x the arrival
    rate) through a static equal-split fleet and an arbitrated one, then
    benchmarks the arbiter's re-solve.  The asserted outcome is the
    subsystem's reason to exist: following the workload with the memory
    yields strictly lower total write amplification than the static
    split of the same budget.
    """
    from repro.core.allocation import MemoryArbiter, SeriesWorkload
    from repro.serving import ShardedDatabase
    from repro.workloads import generate_fleet

    fleet_data = generate_fleet(
        n_series=8,
        points_per_series=4000,
        disordered_fraction=0.5,
        hot_fraction=0.25,
        hot_rate_multiplier=4,
        seed=11,
    )
    rounds = _fleet_rounds(fleet_data, chunk=1000)
    candidates = (32, 64, 128, 256)
    total_budget = 64 * len(fleet_data)

    def run_fleet(arbiter):
        fleet = ShardedDatabase(
            n_shards=4,
            memory_budget_per_series=64,
            sstable_size=32,
            auto_tune=True,
            arbiter=arbiter,
        )
        for batch in rounds:
            fleet.ingest_batch(batch)
        fleet.flush_all()
        writes = points = 0
        for name in fleet.series_names():
            stats = fleet.database_for(name).series(name).engine.stats
            writes += stats.disk_writes
            points += stats.user_points
        return fleet, writes / points

    _, static_wa = run_fleet(None)
    arbitrated, arbitrated_wa = run_fleet(
        MemoryArbiter(
            total_budget=total_budget,
            candidate_budgets=candidates,
            decision_interval=4000,
            min_observations=512,
        )
    )
    benchmark.extra_info["static_wa"] = static_wa
    benchmark.extra_info["arbitrated_wa"] = arbitrated_wa
    assert arbitrated.last_rebalance is not None
    assert arbitrated_wa < static_wa

    # The online hot path: re-solve the fleet's budgets from the live
    # delay profiles (what every due decision costs at ingest time).
    workloads = []
    current = {}
    for name in arbitrated.series_names():
        state = arbitrated.database_for(name).series(name)
        profile = state.analyzer.profile()
        workloads.append(
            SeriesWorkload(
                name=name,
                delay=profile.distribution,
                dt=profile.dt,
                rate=float(state.analyzer.observed_points),
            )
        )
        current[name] = state.config.memory_budget
    solver = MemoryArbiter(
        total_budget=total_budget, candidate_budgets=candidates
    )

    def decide():
        return solver.decide(workloads, current_budgets=current)

    decision = benchmark(decide)
    assert decision.allocations


@pytest.fixture(scope="module")
def federated_fleet():
    """A 4-shard fleet and its unsharded twin, loaded and flushed.

    Small SSTables (256 points) over 8x100k points make the per-shard
    aggregate scan genuinely CPU-bound (hundreds of per-table partials),
    which is the regime where scatter-gather across workers pays.
    """
    from repro.lsm.database import TimeSeriesDatabase
    from repro.serving import ShardedDatabase

    fleet = ShardedDatabase(
        n_shards=4, memory_budget_per_series=2048, sstable_size=256
    )
    reference = TimeSeriesDatabase(
        memory_budget_per_series=2048, sstable_size=256
    )
    for index in range(8):
        data = generate_synthetic(
            100_000, dt=_DT, delay=_DELAY, seed=40 + index
        )
        name = f"sensor-{index:02d}"
        fleet.write(name, data.tg)
        reference.write(name, data.tg)
    fleet.flush_all()
    reference.flush_all()
    yield fleet, reference
    fleet.federation.close()


def _best_seconds(fn, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_perf_federated_agg(benchmark, federated_fleet):
    """Fleet-wide federated aggregate: scatter-gather vs sequential.

    The exactness contract is asserted unconditionally: the federated
    answer — float ``total`` included — equals the serial single-
    database fold bit for bit.  The >=2x speedup over sequential
    per-shard querying is asserted only where >=4 CPUs are actually
    schedulable (the CI runners); on smaller hosts the timings are
    still recorded in ``extra_info`` for the trajectory.
    """
    import os

    from repro.query import aggregate_over_series

    fleet, reference = federated_fleet
    expected = aggregate_over_series(reference)

    def sequential():
        return fleet.query_aggregate(workers=1, use_cache=False)

    def federated():
        return fleet.query_aggregate(workers=4, use_cache=False)

    federated()  # build and warm the fork pool outside the timings
    serial_s = _best_seconds(sequential)
    parallel_s = _best_seconds(federated)
    speedup = serial_s / parallel_s
    result = benchmark(federated)
    assert result == expected  # bitwise, float sum included
    benchmark.extra_info["serial_ms"] = serial_s * 1e3
    benchmark.extra_info["parallel_ms"] = parallel_s * 1e3
    benchmark.extra_info["speedup"] = speedup
    if len(os.sched_getaffinity(0)) >= 4:
        assert speedup >= 2.0


def test_perf_federated_scatter(benchmark, federated_fleet):
    """Fleet-wide collected range scan through the scatter path.

    Exercises the heavy half of federation: per-shard row collection,
    cross-process row transfer, and the stable k-way merge in ``t_g``
    order.  The merged rows must be identical to the serial
    single-database scan.
    """
    from repro.query import scan_over_series

    fleet, reference = federated_fleet
    expected = scan_over_series(reference, collect=True)

    def scatter():
        return fleet.query_range(collect=True, workers=4, use_cache=False)

    scatter()  # warm the pool
    stats = benchmark(scatter)
    assert stats.result_points == expected.result_points
    assert np.array_equal(stats.rows, expected.rows)
    assert np.array_equal(stats.row_ids, expected.row_ids)
