"""Benchmark: regenerate Figure 11 (WA on S-9, estimate vs truth)."""

from repro.experiments.fig11_s9_wa import run

from conftest import run_once


def test_fig11(benchmark, bench_scale, emit):
    result = run_once(benchmark, run, scale=max(bench_scale, 0.5))
    emit(result)
    table = result.table("WA on S-9")
    (label_c, est_c, real_c), (label_s, est_s, real_s) = table.rows
    # Paper's Figure 11: pi_s lower than pi_c in both estimate and truth.
    assert est_s < est_c
    assert real_s < real_c
    # Estimates land within the paper's ~1 WA-unit error band.
    assert abs(est_c - real_c) < 1.0
    assert abs(est_s - real_s) < 1.0
