"""Benchmark: regenerate Figure 19 (dataset H delay profile)."""

from repro.experiments.fig19_h_delays import run

from conftest import run_once


def test_fig19(benchmark, bench_scale, emit):
    result = run_once(benchmark, run, scale=bench_scale)
    emit(result)
    summary = result.table("Delay summary")
    below_period = float(summary.rows[0][-1])
    # "most of the delays are indeed less than about 5x10^4 ms".
    assert below_period > 85.0
    disorder = result.table("Disorder")
    ooo_percent = float(disorder.rows[0][0])
    mean_ooo_s = float(disorder.rows[0][2])
    # Very low out-of-order rate with small out-of-order delays.
    assert ooo_percent < 0.3
    assert 1.0 < mean_ooo_s < 6.0
