"""Benchmark: ablation A1 — SSTable granularity vs model error."""

import numpy as np

from repro.experiments.ablation_sstable_size import run

from conftest import run_once


def test_ablation_sstable(benchmark, bench_scale, emit):
    # Steady-state WA needs a reasonably long run; floor the scale.
    result = run_once(benchmark, run, scale=max(bench_scale, 1.0))
    emit(result)
    table = result.table("Measured WA vs SSTable size")
    sizes = [int(s) for s in table.column("sstable size")]
    errors = np.asarray(table.column("error"), dtype=float)
    # Coarser slabs mean more padding: measured WA grows with the size,
    # so the (measured - model) error grows too.
    assert errors[-1] > errors[0]
    paper_error = float(errors[sizes.index(512)])
    # The paper's stated ~1 bound at its 512-point SSTables.
    assert abs(paper_error) < 1.5
