"""Benchmark: aggregate model accuracy over the Table II grid."""

from repro.experiments.validation import run

from conftest import run_once


def test_validation(benchmark, bench_scale, emit):
    # Accuracy statistics need past-warm-up runs; floor the scale.
    result = run_once(benchmark, run, scale=max(bench_scale, 1.0))
    emit(result)
    summary = result.table("Model error summaries")
    by_model = {row[0]: row for row in summary.rows}
    mae_consistent = by_model["r_s (consistent variant)"][1]
    mae_eq5 = by_model["r_s (printed Eq. 5)"][1]
    # The calibration result the library's default rests on.
    assert mae_consistent < mae_eq5
    assert mae_consistent < 1.0
    # The corrected r_c carries the documented one-sided bias, bounded
    # by roughly the paper's error band at steady state.
    bias_rc = by_model["r_c (granularity-corrected)"][2]
    assert abs(bias_rc) < 1.2
