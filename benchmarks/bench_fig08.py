"""Benchmark: regenerate Figure 8 (S-9 delay characterisation)."""

from repro.experiments.fig08_s9_delays import PAPER_OUT_OF_ORDER_PERCENT, run

from conftest import run_once


def test_fig08(benchmark, bench_scale, emit):
    result = run_once(benchmark, run, scale=max(bench_scale, 0.5))
    emit(result)
    disorder = result.table("Disorder")
    out_of_order = float(disorder.rows[0][0])
    # Calibrated to the published 7.05% out-of-order rate.
    assert abs(out_of_order - PAPER_OUT_OF_ORDER_PERCENT) < 2.0
    summary = result.table("Delay summary")
    skew = float(summary.rows[0][-1])
    # Skewed delays: mean far above the median (heavy tail).
    assert skew > 2.0
