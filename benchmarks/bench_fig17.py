"""Benchmark: regenerate Figure 17 (mixed-family delay drift)."""

from repro.experiments.fig17_dynamic_robustness import run

from conftest import run_once


def test_fig17(benchmark, bench_scale, emit):
    result = run_once(benchmark, run, scale=bench_scale)
    emit(result)
    wa = result.table("(b) WA per strategy")
    values = {row[0]: float(row[1]) for row in wa.rows}
    # The dynamically tuned policy beats always-pi_c and is at worst
    # marginally behind the better static choice.
    assert values["pi_adaptive"] < values["pi_c"]
    best_static = min(values["pi_c"], values["pi_s(n/2)"])
    assert values["pi_adaptive"] <= best_static * 1.1
    switches = result.table("pi_adaptive switches")
    assert switches.rows[0][0] != "-"
