"""Benchmark: regenerate Figure 18 (S-9 with irregular intervals)."""

from repro.experiments.fig18_s9_intervals import run

from conftest import run_once


def test_fig18(benchmark, bench_scale, emit):
    result = run_once(benchmark, run, scale=max(bench_scale, 0.5))
    emit(result)
    intervals = result.table("(a) Generation interval")
    cv = float(intervals.rows[0][-1])
    # Far from a constant generation frequency.
    assert cv > 0.3
    wa = result.table("(b) WA estimate vs truth")
    (label_c, est_c, real_c), (label_s, est_s, real_s) = wa.rows
    # Paper: the verdict (pi_s lower) holds despite irregular intervals.
    assert est_s < est_c
    assert real_s < real_c
