"""Benchmark: ablation A8 — separation or not, per compaction policy."""

from repro.experiments.ablation_composed import run

from conftest import run_once


def test_ablation_composed(benchmark, bench_scale, emit):
    result = run_once(benchmark, run, scale=max(bench_scale, 0.3))
    emit(result)
    rows = result.tables[0].rows
    wa = {row[0]: float(row[2]) for row in rows}
    assert len(wa) == 6
    # The paper's headline result holds under the kernel's composed pi_s.
    assert wa["leveled / separation (pi_s)"] < wa["leveled / single C0 (pi_c)"]
    # The novel multilevel hybrid inherits the separation win.
    assert wa["multilevel / separation"] < wa["multilevel / single C0"]
    # Every composition actually wrote to disk and accounted for it.
    assert all(value >= 1.0 for value in wa.values())
