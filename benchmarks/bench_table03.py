"""Benchmark: regenerate Table III (write throughput pi_c vs pi_s)."""

import numpy as np

from repro.experiments.table03_throughput import run

from conftest import run_once


def test_table03(benchmark, bench_scale, emit):
    result = run_once(benchmark, run, scale=bench_scale)
    emit(result)
    table = result.table("Write throughput")
    pi_c = np.asarray(table.column("pi_c"), dtype=float)
    pi_s = np.asarray(table.column("pi_s(n/2)"), dtype=float)
    # Paper: no significant throughput impact (compaction is background).
    assert np.all(np.abs(pi_s / pi_c - 1.0) < 0.10)
    # Same order of magnitude as the paper's ~85-93 points/ms.
    assert np.all((pi_c > 40) & (pi_c < 200))
