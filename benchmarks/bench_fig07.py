"""Benchmark: regenerate Figure 7 (WA vs n_seq curve)."""

import numpy as np

from repro.experiments.fig07_wa_curve import run

from conftest import run_once


def test_fig07(benchmark, bench_scale, emit):
    result = run_once(benchmark, run, scale=bench_scale)
    emit(result)
    sweep = result.table("WA under pi_s")
    measured = np.asarray(sweep.column("experiment"), dtype=float)
    modelled = np.asarray(sweep.column("r_s model"), dtype=float)
    reference = result.table("pi_c reference")
    measured_rc = float(reference.rows[0][0])
    modelled_rc = float(reference.rows[0][1])
    # U-shape: the interior minimum beats both endpoints.
    assert measured.min() < measured[0]
    assert measured.min() < measured[-1]
    assert modelled.min() < modelled[0]
    assert modelled.min() < modelled[-1]
    # For this heavy-disorder workload pi_s wins (paper's Figure 7).
    assert measured.min() < measured_rc
    assert modelled.min() < modelled_rc
    # Model tracks the measurement within ~1 WA unit (paper's bound).
    assert np.all(np.abs(measured - modelled) < 1.5)
