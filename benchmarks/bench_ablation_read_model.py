"""Benchmark: ablation A6 — analytical read estimates vs measurements."""

import math

from repro.experiments.ablation_read_model import run

from conftest import run_once


def test_ablation_read_model(benchmark, bench_scale, emit):
    result = run_once(benchmark, run, scale=max(bench_scale, 0.5))
    emit(result)
    rows = result.tables[0].rows
    for row in rows:
        name, window, policy, files_est, files_meas, ra_est, ra_meas = row
        # Files-touched estimates land within one file or a 3x factor.
        assert abs(files_est - files_meas) <= max(1.0, 2.0 * files_meas), row
        # RA estimates within 3x wherever both are defined and non-zero.
        if not math.isnan(ra_meas) and ra_meas > 0 and ra_est > 0:
            assert 1 / 3 <= ra_est / ra_meas <= 3.0, row
    # The estimates rank the policies correctly at the narrow window:
    # pi_s reads fewer points than pi_c.
    narrow = {
        (r[0], r[2]): r[5] for r in rows if r[1] == 1000.0
    }
    for name in ("M7", "M12"):
        assert narrow[(name, "pi_s")] < narrow[(name, "pi_c")]
