"""Benchmark: regenerate Figure 16 (dataset H robustness)."""

from repro.experiments.fig16_dataset_h import run

from conftest import run_once


def test_fig16(benchmark, bench_scale, emit):
    result = run_once(benchmark, run, scale=bench_scale)
    emit(result)
    acf = result.table("(a) Delay autocorrelation")
    significant = [row for row in acf.rows if row[3]]
    # Paper: H's delays are strongly autocorrelated (not independent).
    assert len(significant) >= 10
    wa = result.table("(b) WA estimate vs truth")
    (label_c, est_c, real_c), (label_s, est_s, real_s) = wa.rows
    # Paper: pi_c wins on H despite the violated independence assumption.
    assert est_c <= est_s
    assert real_c <= real_s
