"""Benchmark: regenerate Table II (dataset catalog + disorder)."""

from repro.experiments.table02_datasets import run

from conftest import run_once


def test_table02(benchmark, bench_scale, emit):
    result = run_once(benchmark, run, scale=bench_scale)
    emit(result)
    table = result.table("Table II parameters")
    rows = {row[0]: row for row in table.rows}
    assert len(rows) == 12
    # Disorder gradients Section V-B relies on.
    assert rows["M7"][-1] > rows["M1"][-1]  # smaller dt -> more disorder
    assert rows["M3"][-1] > rows["M1"][-1]  # larger sigma -> more disorder
    assert rows["M4"][-1] > rows["M1"][-1]  # larger mu -> more disorder
