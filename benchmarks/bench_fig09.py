"""Benchmark: regenerate Figure 9 (WA grid over M1-M12)."""

from repro.experiments.fig09_wa_grid import run

from conftest import run_once


def test_fig09(benchmark, bench_scale, emit):
    result = run_once(benchmark, run, scale=bench_scale)
    emit(result)
    summary = result.table("Per-dataset summary")
    winners_measured = summary.column("measured winner")
    winners_model = summary.column("model winner")
    agreement = sum(
        1 for a, b in zip(winners_measured, winners_model) if a == b
    )
    # The models pick the measured winner on (at least) most datasets.
    assert agreement >= len(winners_measured) - 2

    by_name = {row[0]: row for row in summary.rows}
    # dt=10 datasets are more disordered than their dt=50 counterparts.
    assert by_name["M7"][4] > by_name["M1"][4]
    assert by_name["M12"][4] > by_name["M6"][4]
    # sigma raises WA within a block (paper: M1 -> M3).
    assert by_name["M3"][4] > by_name["M1"][4]
    # mu raises WA (paper: M1 vs M4).
    assert by_name["M4"][4] > by_name["M1"][4]
