"""Benchmark: regenerate Figure 20 (query latency on dataset H)."""

import numpy as np

from repro.experiments.fig20_h_queries import run

from conftest import run_once


def test_fig20(benchmark, bench_scale, emit):
    result = run_once(benchmark, run, scale=bench_scale)
    emit(result)
    recent = result.table("(a) recent-data")
    historical = result.table("(b) historical")
    for table in (recent, historical):
        lat_c = np.asarray(table.column("pi_c"), dtype=float)
        lat_s = np.asarray(table.column("pi_s"), dtype=float)
        assert np.all(np.isfinite(lat_c)) and np.all(np.isfinite(lat_s))
    ratios = np.asarray(historical.column("pi_s/pi_c"), dtype=float)
    # On this nearly ordered workload the policies converge on
    # historical queries; the paper sees the gap close by the 20 s
    # window — the ratio must not blow up against pi_s.
    assert ratios[-1] <= 1.2
