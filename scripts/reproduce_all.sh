#!/usr/bin/env bash
# Reproduce everything: tests, every paper figure/table, ablations,
# examples.  Outputs land in test_output.txt, bench_output.txt and
# benchmarks/results/.
#
# Usage:  scripts/reproduce_all.sh [BENCH_SCALE]
#   BENCH_SCALE  dataset-size multiplier for the benchmarks
#                (default 0.25; the paper's own scale is ~100)
set -euo pipefail
cd "$(dirname "$0")/.."

export REPRO_BENCH_SCALE="${1:-0.25}"

echo "== 1/4 unit/integration/property tests"
pytest tests/ 2>&1 | tee test_output.txt

echo "== 2/4 figure/table benchmarks (scale=${REPRO_BENCH_SCALE})"
pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

echo "== 3/4 examples"
for example in examples/*.py; do
    echo "--- ${example}"
    python "${example}" > /dev/null
done

echo "== 4/4 perf-regression check"
python scripts/bench_perf.py --quick

echo "All reproduction artifacts regenerated."
echo "  - test_output.txt / bench_output.txt"
echo "  - benchmarks/results/<experiment>.txt"
echo "  - BENCH_perf.json"
