#!/usr/bin/env python
"""Perf-regression harness over ``benchmarks/bench_perf_library.py``.

Runs the library's hot-path benchmarks under pytest-benchmark, appends
the per-test best times to the ``BENCH_perf.json`` trajectory at the
repo root, and fails when any benchmark regresses more than
``--max-regression`` (default 30%) against the committed baseline.

Usage::

    PYTHONPATH=src python scripts/bench_perf.py            # full run
    PYTHONPATH=src python scripts/bench_perf.py --quick    # 1-round smoke
    PYTHONPATH=src python scripts/bench_perf.py --compare-only
    PYTHONPATH=src python scripts/bench_perf.py --update-baseline
    PYTHONPATH=src python scripts/bench_perf.py --quick \\
        --require test_perf_bursty_ingest_stall

``BENCH_perf.json`` layout (schema 1)::

    {
      "schema": 1,
      "baseline": {<entry>},           # reference point for the comparator
      "entries": [<entry>, ...]        # append-only run trajectory
    }

where each entry records ``timings`` as ``{test_name: min_seconds}``
plus provenance (timestamp, python/platform, quick flag).  ``min`` is
used because it is the most noise-robust point statistic for
wall-clock microbenchmarks.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "benchmarks" / "bench_perf_library.py"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_perf.json"
SCHEMA = 1

QUICK_FLAGS = [
    "--benchmark-min-rounds=1",
    "--benchmark-max-time=0.1",
    "--benchmark-warmup=off",
]


def run_benchmarks(quick: bool) -> dict:
    """Run the perf suite once, returning a trajectory entry."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    with tempfile.TemporaryDirectory() as tmp:
        report = Path(tmp) / "bench.json"
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            str(BENCH_FILE),
            "-q",
            "--benchmark-json",
            str(report),
        ]
        if quick:
            cmd.extend(QUICK_FLAGS)
        print(f"[bench-perf] running: {' '.join(cmd[3:])}", flush=True)
        started = time.time()
        proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
        if proc.returncode != 0:
            raise SystemExit(f"benchmark run failed (exit {proc.returncode})")
        data = json.loads(report.read_text())
    timings = {
        bench["name"]: float(bench["stats"]["min"])
        for bench in data.get("benchmarks", [])
    }
    if not timings:
        raise SystemExit("benchmark run produced no timings")
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "duration_s": round(time.time() - started, 2),
        "timings": timings,
    }


def load_history(path: Path) -> dict:
    if not path.exists():
        return {"schema": SCHEMA, "baseline": None, "entries": []}
    history = json.loads(path.read_text())
    if history.get("schema") != SCHEMA:
        raise SystemExit(
            f"{path} has unsupported schema {history.get('schema')!r}"
        )
    return history


def save_history(path: Path, history: dict) -> None:
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)


def compare(baseline: dict, current: dict, max_regression: float) -> list[str]:
    """Return failure messages for tests slower than the allowed ratio."""
    failures: list[str] = []
    base_timings = baseline["timings"]
    cur_timings = current["timings"]
    width = max(len(name) for name in sorted(base_timings | cur_timings))
    print(f"[bench-perf] comparing against baseline from "
          f"{baseline.get('timestamp', '?')} (max regression "
          f"{max_regression:.0%})")
    for name in sorted(base_timings):
        base = base_timings[name]
        cur = cur_timings.get(name)
        if cur is None:
            failures.append(f"{name}: present in baseline but not measured")
            continue
        ratio = cur / base if base > 0 else float("inf")
        status = "ok"
        if ratio > 1.0 + max_regression:
            status = "REGRESSION"
            failures.append(
                f"{name}: {cur:.6f}s vs baseline {base:.6f}s "
                f"({ratio - 1.0:+.1%} > +{max_regression:.0%})"
            )
        print(
            f"  {name:<{width}}  {base:>10.6f}s -> {cur:>10.6f}s "
            f"({ratio - 1.0:+7.1%})  {status}"
        )
    for name in sorted(set(cur_timings) - set(base_timings)):
        print(f"  {name:<{width}}  (new; no baseline)  {cur_timings[name]:.6f}s")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="single-round smoke run (CI): min-rounds=1, warmup off",
    )
    parser.add_argument(
        "--compare-only",
        action="store_true",
        help="compare the most recent recorded entry against the baseline "
        "without running benchmarks or touching the file",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="promote this run to be the new baseline",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        metavar="RATIO",
        help="allowed slowdown vs baseline before failing (default 0.30)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"trajectory file (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="TEST",
        help="fail unless this benchmark name appears in the run "
        "(repeatable); guards against stability benchmarks being "
        "skipped or renamed without CI noticing",
    )
    args = parser.parse_args(argv)

    history = load_history(args.output)

    if args.compare_only:
        if not history["entries"]:
            raise SystemExit(f"{args.output} has no recorded entries")
        current = history["entries"][-1]
    else:
        current = run_benchmarks(quick=args.quick)
        history["entries"].append(current)

    if history["baseline"] is None or args.update_baseline:
        history["baseline"] = current
        print("[bench-perf] baseline set from this run")

    failures = compare(history["baseline"], current, args.max_regression)

    for name in args.require:
        if name not in current["timings"]:
            failures.append(f"{name}: required benchmark was not measured")

    if not args.compare_only:
        save_history(args.output, history)
        print(f"[bench-perf] trajectory written to {args.output} "
              f"({len(history['entries'])} entries)")

    if failures:
        print("[bench-perf] FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("[bench-perf] OK: no regression beyond "
          f"{args.max_regression:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
